"""Regenerates paper Figure 3: daily 2Q error variation on IBMQ14."""

from conftest import emit
from repro.experiments import fig3_calibration


def test_fig3_calibration_series(benchmark):
    result = benchmark.pedantic(
        fig3_calibration.run, kwargs={"days": 26}, rounds=1, iterations=1
    )
    emit(fig3_calibration.format_result(result))
    # Paper: device average 7.95%, up to ~9x spread across qubits/days.
    assert 0.04 <= result.average_error <= 0.14
    assert 4.0 <= result.spread_factor <= 20.0
    # Four gates plotted for 26 days each.
    assert all(len(v) == 26 for v in result.series.values())
    # Gates must differ from each other (spatial variation)...
    means = [sum(v) / len(v) for v in result.series.values()]
    assert max(means) / min(means) > 1.5
    # ...and each gate must drift day to day (temporal variation).
    for values in result.series.values():
        assert max(values) / min(values) > 1.05

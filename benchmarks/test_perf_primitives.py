"""Microbenchmarks of the core primitives (pytest-benchmark timings).

These are proper repeated-timing benchmarks (unlike the experiment
regenerations, which run once): reliability-matrix construction, SMT
mapping, full compilation, simulation, and success estimation.
"""

from repro.compiler import (
    OptimizationLevel,
    TriQCompiler,
    compile_circuit,
    compute_reliability,
)
from repro.devices import ibmq14_melbourne, umd_trapped_ion
from repro.programs import bernstein_vazirani, qft_benchmark
from repro.sim import (
    ideal_distribution,
    monte_carlo_success_rate,
    simulate_statevector,
)


def test_reliability_matrix_ibmq14(benchmark):
    device = ibmq14_melbourne()
    matrix = benchmark(lambda: compute_reliability(device))
    assert matrix.num_qubits == 14


def test_smt_mapping_bv8_on_ibmq14(benchmark):
    device = ibmq14_melbourne()
    compiler = TriQCompiler(device, level=OptimizationLevel.OPT_1QCN)
    circuit, _ = bernstein_vazirani(8)
    from repro.ir.decompose import decompose_to_basis

    decomposed = decompose_to_basis(circuit)
    mapping = benchmark(lambda: compiler.map_qubits(decomposed))
    assert len(mapping.placement) == 8


def test_full_compile_qft_on_ibmq14(benchmark):
    device = ibmq14_melbourne()
    circuit, _ = qft_benchmark(4)
    program = benchmark(
        lambda: compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN
        )
    )
    assert program.two_qubit_gate_count() > 0


def test_full_compile_bv5_on_umdti(benchmark):
    device = umd_trapped_ion()
    circuit, _ = bernstein_vazirani(5)
    program = benchmark(lambda: compile_circuit(circuit, device))
    assert program.num_swaps == 0


def test_statevector_simulation_14q(benchmark):
    device = ibmq14_melbourne()
    circuit, _ = bernstein_vazirani(8)
    program = compile_circuit(circuit, device)
    state = benchmark(lambda: simulate_statevector(program.circuit))
    assert state.shape == (2**14,)


def test_ideal_distribution_bv8(benchmark):
    circuit, correct = bernstein_vazirani(8)
    dist = benchmark(lambda: ideal_distribution(circuit))
    assert dist[correct] > 0.999


def test_success_estimation_toffoli_umdti(benchmark):
    from repro.programs import toffoli_benchmark

    device = umd_trapped_ion()
    circuit, correct = toffoli_benchmark()
    program = compile_circuit(circuit, device)
    estimate = benchmark.pedantic(
        lambda: monte_carlo_success_rate(
            program.circuit, device, correct, fault_samples=50
        ),
        rounds=3,
        iterations=1,
    )
    assert estimate.success_rate > 0.5

"""Regenerates paper section 6.5: compile-time scaling to 72 qubits.

Paper shape: TriQ-1QOptCN compiles supremacy circuits up to the
72-qubit Bristlecone configuration; solver effort is bounded by the
O(n^2) distinct-interacting-pair count and is independent of total gate
count.
"""

from conftest import emit
from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import google_bristlecone_72
from repro.experiments import sec65_scaling
from repro.ir.decompose import decompose_to_basis
from repro.programs import supremacy_circuit


def test_sec65_scaling_sweep(benchmark):
    points = benchmark.pedantic(sec65_scaling.run, rounds=1, iterations=1)
    emit(sec65_scaling.format_result(points))

    sizes = [p.num_qubits for p in points]
    assert sizes[-1] == 72
    # Distinct pairs (solver variables) stay O(n^2) — for a grid, in
    # fact O(n) in edges.
    for point in points:
        assert point.distinct_pairs <= point.num_qubits * 4
    # The largest NISQ configuration compiles in reasonable time.
    assert points[-1].compile_time_s < 120.0


def test_sec65_gate_count_independence(benchmark):
    """Mapping time must not scale with circuit depth (gate count)."""
    device = google_bristlecone_72()
    compiler = TriQCompiler(
        device,
        level=OptimizationLevel.OPT_1QCN,
        node_limit=50_000,
        time_limit_s=20.0,
    )

    def map_depth(depth: int) -> float:
        circuit = decompose_to_basis(supremacy_circuit(72, depth, seed=1))
        mapping = compiler.map_qubits(circuit)
        return mapping.solver_time_s

    shallow = benchmark.pedantic(
        map_depth, args=(8,), rounds=1, iterations=1
    )
    deep = map_depth(64)
    # 8x the gates must not cost anywhere near 8x the solver time.
    assert deep < max(shallow, 0.5) * 4

"""Ablation: reliability-aware routing vs hop-count routing.

DESIGN.md calls out the routing-path choice as a load-bearing design
decision: TriQ routes along most-reliable paths (paper section 4.4),
the vendor baselines along hop-count shortest paths.  Two measurements:

1. *Path selection*: on a device whose shortest path crosses a bad
   edge, the aware router must route around it, and the end-to-end
   gate reliability must match the reliability-matrix prediction.
2. *Mapped-circuit quality*: starting from the same (SMT) mapping on
   IBMQ14, aware routing must not produce less reliable gate sequences
   than hop-count routing.
"""

import numpy as np
from conftest import emit
from tests.helpers import make_device
from repro.baselines.router import greedy_route
from repro.compiler.mapping import default_mapping, smt_mapping
from repro.compiler.reliability import compute_reliability
from repro.compiler.routing import route_circuit
from repro.devices import Topology, ibmq14_melbourne
from repro.experiments.tables import format_table
from repro.ir import Circuit
from repro.ir.decompose import decompose_to_basis
from repro.programs import bernstein_vazirani


def _sequence_reliability(routed, calibration) -> float:
    product = 1.0
    for inst in routed.circuit:
        if inst.is_unitary and inst.num_qubits == 2:
            weight = calibration.edge_reliability(*inst.qubits)
            product *= weight**3 if inst.name == "swap" else weight
    return product


def run_path_selection():
    # A 3x3 grid whose central column is terrible: hop-count routing
    # crosses it, reliability routing goes around.
    topology = Topology.grid(3, 3)
    device = make_device(topology, two_qubit_error=0.05)
    calibration = device.calibration()
    for edge in (frozenset((1, 4)), frozenset((4, 7)), frozenset((3, 4)),
                 frozenset((4, 5))):
        calibration.two_qubit_error[edge] = 0.45
    circuit = decompose_to_basis(Circuit(9).cx(3, 5))
    mapping = default_mapping(circuit, device)
    reliability = compute_reliability(device)
    aware = route_circuit(circuit, device, mapping, reliability)
    blind = greedy_route(circuit, device, mapping, seed=0)
    return {
        "aware": _sequence_reliability(aware, calibration),
        "blind": _sequence_reliability(blind, calibration),
        "predicted": float(reliability.matrix[3, 5]),
    }


def run_mapped_quality():
    rows = []
    for day in range(5):
        device = ibmq14_melbourne(day)
        calibration = device.calibration()
        circuit, _ = bernstein_vazirani(8)
        decomposed = decompose_to_basis(circuit)
        reliability = compute_reliability(device)
        mapping = smt_mapping(decomposed, device, reliability)
        aware = route_circuit(decomposed, device, mapping, reliability)
        blind = greedy_route(decomposed, device, mapping, seed=0)
        rows.append(
            (
                day,
                _sequence_reliability(aware, calibration),
                _sequence_reliability(blind, calibration),
                aware.num_swaps,
                blind.num_swaps,
            )
        )
    return rows


def test_path_selection_avoids_bad_edges(benchmark):
    result = benchmark.pedantic(run_path_selection, rounds=1, iterations=1)
    emit(
        format_table(
            ["Router", "End-to-end gate reliability"],
            [
                ("reliability-aware (TriQ)", result["aware"]),
                ("hop-count (baselines)", result["blind"]),
                ("reliability-matrix prediction", result["predicted"]),
            ],
            title="Ablation: routing one distant gate across a bad region",
        )
    )
    assert result["aware"] > result["blind"]
    # The realized reliability matches the matrix's end-to-end estimate.
    assert abs(result["aware"] - result["predicted"]) < 1e-9


def test_mapped_circuit_quality(benchmark):
    rows = benchmark.pedantic(run_mapped_quality, rounds=1, iterations=1)
    emit(
        format_table(
            ["Day", "Aware seq. rel.", "Hop seq. rel.",
             "Aware swaps", "Hop swaps"],
            rows,
            title="Ablation: routing after SMT mapping (BV8 on IBMQ14)",
        )
    )
    aware = np.mean([r[1] for r in rows])
    blind = np.mean([r[2] for r in rows])
    assert aware >= blind * 0.9

"""Regenerates paper Figure 4: the toolflow, as a verified trace."""

from conftest import emit
from repro.experiments import fig4_toolflow


def test_fig4_toolflow_stages(benchmark):
    stages = benchmark.pedantic(fig4_toolflow.run, rounds=1, iterations=1)
    emit(fig4_toolflow.format_result(stages))
    names = [s.name for s in stages]
    # Every box of Figure 4 appears, in order.
    assert names == [
        "frontend (ScaffCC equivalent)",
        "decomposition",
        "reliability matrix",
        "qubit mapping (SMT)",
        "gate & comm. scheduling",
        "gate implementation",
        "1Q optimization (quaternions)",
        "code generation",
    ]
    by_name = {s.name: s for s in stages}
    # The noise-aware mapping avoids swaps for BV4's star on the grid:
    # 2Q count stays at 3 CNOTs through scheduling.
    assert by_name["gate & comm. scheduling"].two_qubit_gates >= 3
    # 1Q optimization never changes the 2Q structure.
    assert (
        by_name["1Q optimization (quaternions)"].two_qubit_gates
        == by_name["gate implementation"].two_qubit_gates
    )
    # 1Q optimization shrinks the instruction stream.
    assert (
        by_name["1Q optimization (quaternions)"].instructions
        <= by_name["gate implementation"].instructions
    )

"""Regenerates paper Figure 5: the BV4 IR circuit."""

from conftest import emit
from repro.experiments import fig5_ir


def test_fig5_bv4_ir(benchmark):
    result = benchmark.pedantic(fig5_ir.run, rounds=1, iterations=1)
    emit(fig5_ir.format_result(result))
    # Figure 5's structure: H on all qubits twice, X + 3 CNOTs, 4 ROs.
    assert result.op_counts == {"h": 8, "x": 1, "cx": 3, "measure": 4}
    assert result.correct == "1111"
    # The H layer runs in parallel: far fewer layers than instructions.
    assert result.parallel_layers < 16

"""Observability overhead (pytest-benchmark timings).

The tracing layer must be pay-for-what-you-use, exactly like the
contracts recorder: with no active tracer, ``repro.obs.tracer.span``
returns a falsy singleton and touches nothing else, so instrumented
code costs essentially a function call and a global read per span
site.  The obs-off assertions are the load-bearing ones — sweeps
compile thousands of cells with observability off, so the hooks must
stay out of the hot path entirely.
"""

import time

from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import ibmq14_melbourne, rigetti_agave
from repro.obs.tracer import NULL_SPAN, Tracer, span, tracer_context
from repro.programs import bernstein_vazirani


def _compile_time(device, circuit, tracer=None, repeats=7):
    """Best-of-N wall time of one full compile, optionally traced."""
    best = float("inf")
    for _ in range(repeats):
        compiler = TriQCompiler(device, level=OptimizationLevel.OPT_1QCN)
        with tracer_context(tracer):
            started = time.perf_counter()
            compiler.compile(circuit)
            best = min(best, time.perf_counter() - started)
    return best


def test_null_span_is_nearly_free(benchmark):
    """100k inactive span sites — the exact shape of instrumented
    hot-path code — must run in well under a second."""

    def hammer():
        for _ in range(100_000):
            with span("hot", key="value") as sp:
                if sp:  # the guard instrumented code uses
                    sp.set(expensive=1)
        return sp

    result = benchmark(hammer)
    assert result is NULL_SPAN
    stats = benchmark.stats.stats
    assert stats.min < 1.0, (
        f"100k null spans took {stats.min:.3f}s; the inactive path "
        "must stay out of the hot loop"
    )


def test_compile_untraced(benchmark):
    device = rigetti_agave()
    circuit, _ = bernstein_vazirani(4)
    program = benchmark(
        lambda: TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN
        ).compile(circuit)
    )
    assert program.two_qubit_gate_count() >= 3


def test_compile_traced(benchmark):
    device = rigetti_agave()
    circuit, _ = bernstein_vazirani(4)

    def traced_compile():
        with tracer_context(Tracer()):
            return TriQCompiler(
                device, level=OptimizationLevel.OPT_1QCN
            ).compile(circuit)

    program = benchmark(traced_compile)
    assert program.two_qubit_gate_count() >= 3


def test_obs_off_compile_within_noise():
    """With no active tracer the instrumented pipeline must track the
    historical bare-compile time; the generous bound absorbs timing
    noise — the real guard is that span() short-circuits before any
    allocation or clock read."""
    device = ibmq14_melbourne()
    circuit, _ = bernstein_vazirani(6)
    base = _compile_time(device, circuit, tracer=None)
    # Re-measure untraced a second time: the spread between two
    # identical configurations is the noise floor for this machine.
    again = _compile_time(device, circuit, tracer=None)
    noise = abs(again - base)
    assert min(base, again) > 0
    assert noise < max(base, again), "timer produced nonsense"
    assert again < base * 1.5 + 0.005


def test_tracing_overhead_is_bounded():
    """An active tracer may add real work (clock reads, span objects)
    but must stay within a small factor of the bare compile."""
    device = ibmq14_melbourne()
    circuit, _ = bernstein_vazirani(6)
    base = _compile_time(device, circuit, tracer=None)
    traced = _compile_time(device, circuit, tracer=Tracer())
    overhead = traced / base
    print(f"\ntracing overhead: {overhead:.2f}x "
          f"({base * 1e3:.1f} ms -> {traced * 1e3:.1f} ms)")
    assert overhead < 3.0 or traced - base < 0.010

"""Regenerates paper Figure 10: communication optimization.

Paper shape: large 2Q-count reductions on the sparse IBMQ14 (up to 22x,
geomean 2.1x) and smaller ones on the 4-qubit Agave line (up to 3.5x,
geomean 1.3x); success improves correspondingly, except benchmarks like
QFT where noise-unaware placement can land on unreliable hardware.
"""

from conftest import emit
from repro.experiments import fig10_comm


def test_fig10_communication_optimization(benchmark):
    panels = benchmark.pedantic(
        fig10_comm.run, kwargs={"fault_samples": 60}, rounds=1, iterations=1
    )
    emit(fig10_comm.format_result(panels))
    by_device = {p.device: p for p in panels}

    ibm = by_device["IBM Q14 Melbourne"]
    agave = by_device["Rigetti Agave"]

    # Communication optimization never adds 2Q gates on aggregate and
    # wins big on the sparse 14-qubit grid.
    assert ibm.geomean_reduction >= 1.3
    assert ibm.max_reduction >= 4.0
    # The 4-qubit line has little routing freedom: smaller wins.
    assert 1.0 <= agave.geomean_reduction <= 2.0
    assert agave.max_reduction <= 5.0
    assert ibm.max_reduction > agave.max_reduction

    # BV benchmarks (star interaction) are where mapping wins most.
    bv8 = ibm.benchmarks.index("BV8")
    assert ibm.gates_default[bv8] / ibm.gates_comm[bv8] >= 4.0

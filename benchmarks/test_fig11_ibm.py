"""Regenerates paper Figure 11(a, b): noise-adaptivity on IBMQ14.

Paper shape: TriQ-1QOptCN succeeds on all 12 benchmarks, beats the
Qiskit baseline by geomean 3.0x (up to 28x) and the noise-unaware
TriQ-1QOptC by geomean 1.4x (up to 2.8x); Qiskit fails on over half the
suite.
"""

from conftest import emit
from repro.experiments import fig11_noise


def test_fig11_ibm_noise_adaptivity(benchmark):
    result = benchmark.pedantic(
        fig11_noise.run_ibm,
        kwargs={"fault_samples": 60},
        rounds=1,
        iterations=1,
    )
    emit(fig11_noise.format_ibm(result))

    # TriQ-1QOptCN clearly beats the vendor baseline on aggregate.
    assert result.vs_qiskit_geomean >= 1.5
    assert result.vs_qiskit_max >= 4.0
    # Noise-awareness adds on top of communication optimization.
    assert result.vs_comm_geomean >= 0.95
    # Qiskit fails part of the suite (paper: 7/12; our threshold proxy
    # detects the unambiguous ones); TriQ-1QOptCN does not fail
    # everywhere the baseline does.
    assert result.qiskit_failures >= 2
    noise_sr = result.success["TriQ-1QOptCN"]
    qiskit_sr = result.success["Qiskit"]
    assert sum(s > 0.1 for s in noise_sr) > sum(s > 0.1 for s in qiskit_sr)

"""Regenerates paper Figure 9: success rate, TriQ-N vs TriQ-1QOpt.

Paper shape: modest but consistent success gains from 1Q coalescing
(up to 1.26x; geomean 1.09x IBM, 1.03x UMDTI), with UMDTI success high
across the board.
"""

from conftest import emit
from repro.experiments import fig9_success
from repro.experiments.stats import geomean


def test_fig9_success_rates(benchmark):
    results = benchmark.pedantic(
        fig9_success.run, kwargs={"fault_samples": 60}, rounds=1, iterations=1
    )
    emit(fig9_success.format_result(results))
    by_device = {r.device: r for r in results}

    ibm = by_device["IBM Q14 Melbourne"]
    umd = by_device["UMD Trapped Ion"]

    # 1Q optimization helps on aggregate (over non-failed runs; the
    # paper's geomeans are 1.09x IBM / 1.03x UMDTI).
    assert ibm.geomean_improvement > 1.0
    assert umd.geomean_improvement > 0.98
    assert ibm.max_improvement < 4.0
    # The large default-mapped BV circuits fail on IBMQ14 under both
    # configurations (the paper's zero-height bars).
    assert "BV8" in ibm.failed

    # UMDTI's low error rates: every fitting benchmark succeeds well.
    assert min(umd.success_opt) > 0.5
    # IBMQ14 in contrast fails some large benchmarks outright.
    assert min(ibm.success_opt) < 0.2

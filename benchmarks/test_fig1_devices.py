"""Regenerates paper Figure 1: the device-characteristics table."""

from conftest import emit
from repro.experiments import fig1_devices


def test_fig1_device_table(benchmark):
    rows = benchmark.pedantic(fig1_devices.run, rounds=1, iterations=1)
    emit(fig1_devices.format_result(rows))
    assert len(rows) == 7
    by_name = {r.name: r for r in rows}
    # Paper Figure 1 facts.
    assert by_name["IBM Q14 Melbourne"].qubits == 14
    assert by_name["IBM Q14 Melbourne"].two_qubit_gates == 18
    assert by_name["UMD Trapped Ion"].coherence_us == 1.5e6
    assert "fully connected" in by_name["UMD Trapped Ion"].topology
    # UMDTI has the lowest 2Q error; Agave the worst readout.
    assert min(rows, key=lambda r: r.err_2q_pct).name == "UMD Trapped Ion"
    assert max(rows, key=lambda r: r.err_ro_pct).name == "Rigetti Agave"

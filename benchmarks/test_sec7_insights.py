"""Regenerates paper section 7's architecture implications as data."""

from conftest import emit
from repro.experiments import sec7_insights


def test_sec7_architecture_insights(benchmark):
    result = benchmark.pedantic(sec7_insights.run, rounds=1, iterations=1)
    emit(sec7_insights.format_result(result))

    # Insight 1: the arbitrary Rxy interface needs fewer pulses.
    assert result.pulses_by_vendor["umdti"] == 1
    assert result.pulses_by_vendor["ibm"] == 2
    assert result.pulses_by_vendor["rigetti"] == 2

    # Insight 2: sparser topology -> strictly more 2Q gates for QFT.
    gates = result.gates_by_topology
    assert gates["full"] <= gates["grid"] <= gates["line"]
    assert gates["full"] < gates["line"]

    # Insight 3: noise-aware mapping finds more reliable edges even on
    # the low-error trapped-ion machine.
    unaware, aware = result.umdti_min_reliability
    assert aware >= unaware

    # Insight 4: fresh placements track drift at least as well as a
    # stale day-0 placement.
    stale, fresh = result.stale_vs_fresh
    assert fresh >= stale

"""Regenerates paper Table 1: compiler configurations."""

from conftest import emit
from repro.experiments import table1_configs


def test_table1_compiler_matrix(benchmark):
    rows = benchmark.pedantic(table1_configs.run, rounds=1, iterations=1)
    emit(table1_configs.format_result(rows))
    by_name = {r.name: r for r in rows}
    assert not by_name["TriQ-N"].optimizes_1q
    assert by_name["TriQ-1QOpt"].optimizes_1q
    assert not by_name["TriQ-1QOpt"].optimizes_communication
    assert by_name["TriQ-1QOptC"].optimizes_communication
    assert not by_name["TriQ-1QOptC"].noise_aware
    assert by_name["TriQ-1QOptCN"].noise_aware
    assert not by_name["Qiskit"].noise_aware
    assert not by_name["Quil"].noise_aware

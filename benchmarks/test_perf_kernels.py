"""Microbenchmarks of the vectorized kernels vs their serial references.

Each pair times the batched/vectorized kernel against the retained
``_reference_*`` implementation on the same workload, so comparing the
two rows of ``pytest benchmarks/test_perf_kernels.py --benchmark-only``
gives the speedup the ``repro bench`` harness gates on (see
benchmarks/bench_baseline.json).  Every test also asserts the two
implementations agree exactly — a fast wrong kernel must fail here,
not just in the differential suite.
"""

import numpy as np
import pytest

from repro.compiler import OptimizationLevel, compile_circuit
from repro.compiler.reliability import (
    _reference_compute_reliability,
    compute_reliability,
)
from repro.devices import ibmq5_tenerife, ibmq16_rueschlikon
from repro.programs import bernstein_vazirani, qft_benchmark
from repro.sim.success import (
    _reference_monte_carlo_success_rate,
    monte_carlo_success_rate,
)
from repro.sim.trajectories import _reference_sample_counts, sample_counts


@pytest.fixture(scope="module")
def bv4_tenerife():
    device = ibmq5_tenerife()
    circuit, correct = bernstein_vazirani(4)
    compiled = compile_circuit(
        circuit, device, level=OptimizationLevel.OPT_1QCN
    ).circuit
    return device, compiled, correct


@pytest.fixture(scope="module")
def qft5_tenerife():
    device = ibmq5_tenerife()
    circuit, _ = qft_benchmark(5)
    compiled = compile_circuit(
        circuit, device, level=OptimizationLevel.OPT_1QCN
    ).circuit
    return device, compiled


def test_trajectories_batched_bv4(benchmark, bv4_tenerife):
    device, compiled, _ = bv4_tenerife
    counts = benchmark(
        lambda: sample_counts(compiled, device, trials=2000, seed=1)
    )
    assert counts == _reference_sample_counts(
        compiled, device, trials=2000, seed=1
    )


def test_trajectories_reference_bv4(benchmark, bv4_tenerife):
    device, compiled, _ = bv4_tenerife
    counts = benchmark(
        lambda: _reference_sample_counts(compiled, device, trials=2000, seed=1)
    )
    assert sum(counts.values()) == 2000


def test_trajectories_batched_qft5(benchmark, qft5_tenerife):
    device, compiled = qft5_tenerife
    counts = benchmark.pedantic(
        lambda: sample_counts(compiled, device, trials=500, seed=1),
        rounds=3,
        iterations=1,
    )
    assert sum(counts.values()) == 500


def test_trajectories_reference_qft5(benchmark, qft5_tenerife):
    device, compiled = qft5_tenerife
    counts = benchmark.pedantic(
        lambda: _reference_sample_counts(compiled, device, trials=500, seed=1),
        rounds=3,
        iterations=1,
    )
    assert sum(counts.values()) == 500


def test_success_batched_bv4(benchmark, bv4_tenerife):
    device, compiled, correct = bv4_tenerife
    estimate = benchmark(
        lambda: monte_carlo_success_rate(
            compiled, device, correct, fault_samples=300
        )
    )
    reference = _reference_monte_carlo_success_rate(
        compiled, device, correct, fault_samples=300
    )
    assert estimate.success_rate == reference.success_rate


def test_success_reference_bv4(benchmark, bv4_tenerife):
    device, compiled, correct = bv4_tenerife
    estimate = benchmark.pedantic(
        lambda: _reference_monte_carlo_success_rate(
            compiled, device, correct, fault_samples=300
        ),
        rounds=3,
        iterations=1,
    )
    assert 0.0 < estimate.success_rate < 1.0


def test_reliability_log_space_ibmq16(benchmark):
    device = ibmq16_rueschlikon()
    matrix = benchmark(lambda: compute_reliability(device))
    reference = _reference_compute_reliability(device)
    assert np.array_equal(matrix.matrix, reference.matrix)
    assert np.array_equal(matrix.next_hop, reference.next_hop)


def test_reliability_reference_ibmq16(benchmark):
    device = ibmq16_rueschlikon()
    matrix = benchmark(lambda: _reference_compute_reliability(device))
    assert matrix.num_qubits == 16

"""Regenerates paper Figure 8: native 1Q pulse counts, TriQ-N vs 1QOpt.

Paper shape: reductions up to ~4.6x; geomean 1.4x (IBMQ14), 1.4x
(Rigetti Agave), 1.6x (UMDTI); UMDTI gains most per-gate thanks to its
arbitrary-axis rotation.
"""

from conftest import emit
from repro.experiments import fig8_1q


def test_fig8_pulse_counts(benchmark):
    results = benchmark.pedantic(fig8_1q.run, rounds=1, iterations=1)
    emit(fig8_1q.format_result(results))
    by_device = {r.device: r for r in results}

    for result in results:
        # 1Q optimization never increases the pulse count.
        assert all(
            opt <= base
            for base, opt in zip(result.pulses_n, result.pulses_opt)
        )
        # Meaningful aggregate gains, in the paper's band.
        assert 1.1 <= result.geomean_reduction <= 4.0
        assert result.max_reduction <= 10.0

    # UMDTI fits fewer benchmarks but the biggest per-benchmark wins
    # should appear on IBMQ14 (long swap chains) and UMDTI (Rxy).
    assert by_device["IBM Q14 Melbourne"].max_reduction >= 2.0
    assert by_device["UMD Trapped Ion"].geomean_reduction >= 1.3

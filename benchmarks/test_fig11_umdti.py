"""Regenerates paper Figure 11(e, f): gate sequences on UMDTI.

Paper shape: on the low-error, fully-connected trapped-ion machine,
noise-adaptive placement still wins (up to 1.47x on Toffoli chains,
1.35x on Fredkin), and the gains grow with sequence length.
"""

from conftest import emit
import pytest

from repro.experiments import fig11_noise
from repro.experiments.stats import geomean


@pytest.mark.parametrize(
    "gate,max_length", [("toffoli", 8), ("fredkin", 7)]
)
def test_fig11_umdti_sequences(benchmark, gate, max_length):
    result = benchmark.pedantic(
        fig11_noise.run_umdti,
        kwargs={
            "gate": gate,
            "max_length": max_length,
            "fault_samples": 80,
        },
        rounds=1,
        iterations=1,
    )
    emit(fig11_noise.format_umdti(result))

    assert result.lengths == list(range(1, max_length + 1))
    # Success decays with sequence length under both compilers.
    assert result.success_noise[-1] < result.success_noise[0]
    # Noise-adaptivity helps, within the paper's modest band.
    assert 1.0 <= result.max_improvement <= 2.0
    # The advantage grows with circuit length: compare the improvement
    # on the short half vs the long half of the sweep.
    half = max_length // 2
    short_gain = geomean(
        n / max(c, 1e-3)
        for c, n in zip(result.success_comm[:half], result.success_noise[:half])
    )
    long_gain = geomean(
        n / max(c, 1e-3)
        for c, n in zip(result.success_comm[half:], result.success_noise[half:])
    )
    assert long_gain >= short_gain * 0.95

"""Contract-enforcement overhead (pytest-benchmark timings).

The contracts layer must be pay-for-what-you-use: strict mode buys
per-stage invariant checks (including an end-to-end statevector
comparison) at a measured, bounded cost; warn and off modes must not
slow the sweep hot path measurably.  The off-mode assertion is the
load-bearing one — sweeps compile thousands of cells with contracts
off, so the recorder must stay out of the hot path entirely.
"""

import time

from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import ibmq14_melbourne, rigetti_agave
from repro.programs import bernstein_vazirani


def _compile_time(device, circuit, contracts, repeats=5):
    """Best-of-N wall time of one full compile under a contract mode."""
    best = float("inf")
    for _ in range(repeats):
        compiler = TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN, contracts=contracts
        )
        started = time.perf_counter()
        compiler.compile(circuit)
        best = min(best, time.perf_counter() - started)
    return best


def test_compile_with_contracts_off(benchmark):
    device = rigetti_agave()
    circuit, _ = bernstein_vazirani(4)
    program = benchmark(
        lambda: TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN
        ).compile(circuit)
    )
    assert program.contract_violations == ()


def test_compile_with_contracts_warn(benchmark):
    device = rigetti_agave()
    circuit, _ = bernstein_vazirani(4)
    program = benchmark(
        lambda: TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN, contracts="warn"
        ).compile(circuit)
    )
    assert program.contract_violations == ()


def test_compile_with_contracts_strict(benchmark):
    device = rigetti_agave()
    circuit, _ = bernstein_vazirani(4)
    program = benchmark(
        lambda: TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN, contracts="strict"
        ).compile(circuit)
    )
    assert program.contract_violations == ()


def test_strict_overhead_is_bounded():
    """Record the strict-mode cost; it must stay within one order of
    magnitude of a bare compile (the semantic check simulates the
    program twice, so ~2-5x is the expected band)."""
    device = ibmq14_melbourne()
    circuit, _ = bernstein_vazirani(6)
    base = _compile_time(device, circuit, None)
    strict = _compile_time(device, circuit, "strict")
    overhead = strict / base
    print(f"\nstrict-contract overhead: {overhead:.2f}x "
          f"({base * 1e3:.1f} ms -> {strict * 1e3:.1f} ms)")
    assert overhead < 10.0


def test_warn_and_off_add_no_measurable_cost():
    """Warn mode on a clean compile runs the same checks as strict;
    off mode must track the bare compile closely (the recorder never
    invokes a check)."""
    device = ibmq14_melbourne()
    circuit, _ = bernstein_vazirani(6)
    base = _compile_time(device, circuit, None, repeats=7)
    off = _compile_time(device, circuit, "off", repeats=7)
    # Generous bound: timing noise dominates; the real guard is that
    # off mode shares the bare-compile code path (no checks invoked).
    assert off < base * 1.5 + 0.005

"""Extension bench: the paper's section-6.3 large-ion-trap prediction."""

from conftest import emit
from repro.experiments import ext_large_ion


def test_noise_adaptivity_grows_with_chain_length(benchmark):
    points = benchmark.pedantic(
        ext_large_ion.run,
        kwargs={"fault_samples": 120},
        rounds=1,
        iterations=1,
    )
    emit(ext_large_ion.format_result(points))

    # Distance-dependent errors are in effect.
    for point in points:
        assert point.farthest_error > point.nearest_error

    # Noise-adaptivity helps on every chain...
    for point in points:
        assert point.advantage >= 1.0

    # ...and the advantage grows with chain length (the paper's
    # prediction: "even more important then").
    advantages = [p.advantage for p in points]
    assert advantages[-1] > advantages[0]

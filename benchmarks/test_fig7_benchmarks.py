"""Regenerates paper Figure 7: the benchmark summary table."""

from conftest import emit
from repro.experiments import fig7_benchmarks


def test_fig7_benchmark_table(benchmark):
    rows = benchmark.pedantic(fig7_benchmarks.run, rounds=1, iterations=1)
    emit(fig7_benchmarks.format_result(rows))
    assert len(rows) == 12
    by_name = {r.name: r for r in rows}
    # Structural facts used throughout the paper's analysis.
    assert by_name["BV4"].two_qubit_gates == 3
    assert by_name["Toffoli"].two_qubit_gates == 6  # standard network
    assert by_name["QFT"].distinct_pairs == 6       # all-to-all on 4 qubits
    assert by_name["HS6"].distinct_pairs == 3       # disjoint pairs
    assert max(r.qubits for r in rows) == 8

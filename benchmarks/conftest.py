"""Shared configuration for the paper-reproduction benchmark harness.

Every file here regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Experiments run exactly once under
``benchmark.pedantic`` — they are measurements, not microbenchmarks —
and print the same rows/series the paper reports, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces the full evaluation section.
"""

from __future__ import annotations


def emit(text: str) -> None:
    """Print an experiment table (visible with ``-s``; captured otherwise)."""
    print()
    print(text)

"""Shared configuration for the paper-reproduction benchmark harness.

Every file here regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Experiments run exactly once under
``benchmark.pedantic`` — they are measurements, not microbenchmarks —
and print the same rows/series the paper reports, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces the full evaluation section.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# benchmarks/ is not a package, so running `pytest benchmarks/` alone
# does not put the repo root on sys.path; add it so the shared test
# helpers (tests/helpers.py) are importable from here too.
_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tests.helpers import alarm_timeout  # noqa: E402


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    # The same per-test wall-clock guard as the tier-1 suite: a hung
    # experiment fails loudly instead of wedging the benchmark job.
    with alarm_timeout():
        return (yield)


def emit(text: str) -> None:
    """Print an experiment table (visible with ``-s``; captured otherwise)."""
    print()
    print(text)

"""Regenerates paper Figure 12: 12 benchmarks x 7 systems.

Paper shape: UMDTI leads on the benchmarks that fit its 5 qubits;
triangle-shaped benchmarks run well on IBMQ5's triangle; benchmarks
too large for a machine are marked X; larger/better-connected machines
accommodate more of the suite.
"""

from conftest import emit
from repro.experiments import fig12_cross
from repro.experiments.stats import geomean


def test_fig12_cross_platform(benchmark):
    result = benchmark.pedantic(
        fig12_cross.run, kwargs={"fault_samples": 50}, rounds=1, iterations=1
    )
    emit(fig12_cross.format_result(result))

    success = result.success

    # Size restrictions: the 4-qubit Agave can't fit BV6/BV8/HS6...
    assert success["Rigetti Agave"]["BV6"] is None
    assert success["Rigetti Agave"]["BV8"] is None
    # ...while the 16-qubit machines fit everything.
    assert all(v is not None for v in success["IBM Q16 Rueschlikon"].values())

    # UMDTI leads on the 3-qubit benchmarks it fits (Figure 12's
    # headline observation).
    for bench in ("Toffoli", "Fredkin", "Or", "Peres"):
        umd = success["UMD Trapped Ion"][bench]
        others = [
            success[device][bench]
            for device in result.devices
            if device != "UMD Trapped Ion"
            and success[device][bench] is not None
        ]
        assert umd >= max(others) - 0.05, bench

    # Triangle benchmarks fit IBMQ5's triangle: it beats the bigger
    # IBMQ14 grid on aggregate over those benchmarks.
    tri = ("Toffoli", "Fredkin", "Or", "Peres")
    q5 = geomean(max(success["IBM Q5 Tenerife"][b], 1e-3) for b in tri)
    q14 = geomean(max(success["IBM Q14 Melbourne"][b], 1e-3) for b in tri)
    assert q5 > q14 * 0.8

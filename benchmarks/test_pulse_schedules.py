"""Pulse-level schedule analysis (the section-7 OpenPulse extension).

Compares wall-clock schedule durations across technologies — the
coherence-budget view of paper Figure 1 — and benchmarks the lowering
itself.
"""

from conftest import emit
from repro.compiler import compile_circuit
from repro.devices import ibmq14_melbourne, rigetti_aspen3, umd_trapped_ion
from repro.experiments.tables import format_table
from repro.programs import bernstein_vazirani
from repro.pulse import lower_to_pulses


def run_durations():
    circuit, _ = bernstein_vazirani(4)
    rows = []
    for device in (ibmq14_melbourne(), rigetti_aspen3(), umd_trapped_ion()):
        program = compile_circuit(circuit, device)
        schedule = lower_to_pulses(program.circuit, device)
        duration_us = schedule.duration_ns() / 1000.0
        budget = device.coherence_time_us / max(duration_us, 1e-12)
        rows.append(
            (
                device.name,
                schedule.pulse_count(),
                duration_us,
                device.coherence_time_us,
                budget,
            )
        )
    return rows


def test_schedule_durations_vs_coherence(benchmark):
    rows = benchmark.pedantic(run_durations, rounds=1, iterations=1)
    emit(
        format_table(
            ["Device", "Pulses", "BV4 duration (us)",
             "Coherence (us)", "Coherence budget (x)"],
            rows,
            title="Pulse schedules: duration vs coherence (BV4, "
            "TriQ-1QOptCN)",
        )
    )
    by_name = {r[0]: r for r in rows}
    # Trapped-ion gates are orders of magnitude slower in wall clock...
    assert by_name["UMD Trapped Ion"][2] > 100 * by_name[
        "IBM Q14 Melbourne"
    ][2]
    # ...but its coherence budget is still the most comfortable.
    assert by_name["UMD Trapped Ion"][4] > by_name["IBM Q14 Melbourne"][4]
    # Every machine fits BV4 inside its coherence window.
    assert all(r[4] > 1.0 for r in rows)


def test_pulse_lowering_throughput(benchmark):
    device = ibmq14_melbourne()
    circuit, _ = bernstein_vazirani(8)
    program = compile_circuit(circuit, device)
    schedule = benchmark(lambda: lower_to_pulses(program.circuit, device))
    assert schedule.pulse_count() > 0

"""Regenerates paper section 8: BV4 vs prior noise-aware work.

Paper shape: TriQ-compiled BV4 on the 5-qubit IBM machine, re-measured
across 6 days of noise conditions, clearly beats the prior-reported
0.23 success (paper: 0.43-0.51, average 0.47, ~2x).
"""

from conftest import emit
from repro.experiments import sec8_related


def test_sec8_bv4_across_days(benchmark):
    result = benchmark.pedantic(
        sec8_related.run,
        kwargs={"days": 6, "fault_samples": 100},
        rounds=1,
        iterations=1,
    )
    emit(sec8_related.format_result(result))
    assert len(result.success) == 6
    # Clear improvement over the prior work's reported number.
    assert result.average > result.prior_work * 1.3
    # Day-to-day variation exists but stays in a sane band.
    assert max(result.success) - min(result.success) < 0.5

"""Compile-time scaling study (paper section 6.5).

Run with::

    python examples/scalability_study.py

Maps supremacy-style random circuits of growing width onto matching
grid devices (up to the 72-qubit Bristlecone configuration) with full
noise-aware optimization, and prints how solver effort scales.
"""

from repro.experiments import sec65_scaling


def main() -> None:
    points = sec65_scaling.run(depth=16)
    print(sec65_scaling.format_result(points))
    print()
    print(
        "Expected shape: compile time grows polynomially with qubit\n"
        "count and is independent of gate count - the solver only\n"
        "creates variables for distinct interacting pairs (O(n^2))."
    )


if __name__ == "__main__":
    main()

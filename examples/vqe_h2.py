"""VQE for molecular hydrogen: the chemistry workload the paper's
introduction motivates.

Run with::

    python examples/vqe_h2.py

Optimizes a hardware-efficient ansatz for the tapered 2-qubit H2
Hamiltonian, then evaluates the *same* optimal parameters on each study
machine through the exact noise-channel model — showing how device
quality and compilation policy turn directly into chemistry error.
"""

from repro.apps import (
    exact_ground_energy,
    h2_hamiltonian,
    noisy_energy,
    optimize_vqe,
)
from repro.compiler import OptimizationLevel
from repro.devices import (
    ibmq5_tenerife,
    ibmq14_melbourne,
    rigetti_aspen3,
    umd_trapped_ion,
)
from repro.experiments.tables import format_table

#: "Chemical accuracy" threshold, in Hartree.
CHEMICAL_ACCURACY = 1.6e-3


def main() -> None:
    hamiltonian = h2_hamiltonian()
    exact = exact_ground_energy(hamiltonian)
    params, vqe_energy = optimize_vqe(hamiltonian)
    print(f"exact ground energy : {exact:.6f} Ha")
    print(f"noiseless VQE energy: {vqe_energy:.6f} Ha "
          f"(error {abs(vqe_energy - exact) * 1000:.3f} mHa)")
    print()

    rows = []
    for device in (
        umd_trapped_ion(),
        ibmq5_tenerife(),
        ibmq14_melbourne(),
        rigetti_aspen3(),
    ):
        noise_aware = noisy_energy(
            params, hamiltonian, device, level=OptimizationLevel.OPT_1QCN
        )
        noise_blind = noisy_energy(
            params, hamiltonian, device, level=OptimizationLevel.OPT_1QC
        )
        rows.append(
            (
                device.name,
                noise_aware,
                (noise_aware - exact) * 1000,
                (noise_blind - exact) * 1000,
            )
        )
    print(
        format_table(
            ["Device", "VQE energy (Ha)",
             "error, noise-aware (mHa)", "error, noise-blind (mHa)"],
            rows,
            title="H2 VQE at the hardware level",
        )
    )
    print()
    print(
        "Expected shape: the trapped-ion machine comes closest to the\n"
        "true energy, and noise-aware compilation reduces the error\n"
        "wherever 2Q gates dominate the noise (IBM, UMD). On Rigetti,\n"
        "whose 1Q error rates (~3.8%) rival its 2Q rates, TriQ's\n"
        "2Q/readout-only mapping objective can misfire - an honest\n"
        "limitation of the paper's formulation on that hardware.\n"
        f"Chemical accuracy ({CHEMICAL_ACCURACY * 1000:.1f} mHa) remains\n"
        "out of reach for every machine - the paper's NISQ reality check."
    )


if __name__ == "__main__":
    main()

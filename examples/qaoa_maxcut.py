"""QAOA for MaxCut: the optimization workload the paper's intro motivates.

Run with::

    python examples/qaoa_maxcut.py

Optimizes depth-1 and depth-2 QAOA for MaxCut on a 4-node ring, then
evaluates the optimized circuits on the study machines through the
exact noise-channel model, reporting the approximation ratio each
device actually delivers.
"""

from repro.apps import (
    max_cut_value,
    noisy_expected_cut,
    optimize_qaoa,
    ring_graph,
)
from repro.devices import (
    ibmq5_tenerife,
    ibmq16_rueschlikon,
    umd_trapped_ion,
)
from repro.experiments.tables import format_table


def main() -> None:
    graph = ring_graph(4)
    optimum = max_cut_value(graph)
    print(f"MaxCut on the 4-cycle: optimum = {optimum}")

    results = {
        depth: optimize_qaoa(graph, depth=depth) for depth in (1, 2)
    }
    for depth, result in results.items():
        print(
            f"  p={depth}: ideal expected cut "
            f"{result.expected_cut:.3f} "
            f"(ratio {result.approximation_ratio:.3f})"
        )
    print()

    rows = []
    for device in (
        umd_trapped_ion(), ibmq5_tenerife(), ibmq16_rueschlikon()
    ):
        row = [device.name]
        for depth, result in results.items():
            noisy = noisy_expected_cut(graph, result, device)
            row.append(f"{noisy / optimum:.3f}")
        rows.append(row)
    print(
        format_table(
            ["Device", "p=1 ratio (noisy)", "p=2 ratio (noisy)"],
            rows,
            title="QAOA approximation ratio at the hardware level",
        )
    )
    print()
    print(
        "Expected shape: deeper QAOA wins ideally (p=2 is exact on the\n"
        "ring) but costs more 2Q gates, so on noisy machines the p=2\n"
        "advantage shrinks - and the trapped-ion machine keeps the\n"
        "most of it. The depth-vs-noise tradeoff is the NISQ dilemma\n"
        "the paper's compiler exists to soften."
    )


if __name__ == "__main__":
    main()

"""Writing programs in the Scaffold-like language.

Run with::

    python examples/scaffold_frontend.py

The paper's toolflow starts from Scaffold source (a C-like quantum
language) and resolves all classical control at compile time.  This
example writes a parameterized GHZ-state preparation + parity check in
the dialect, compiles it at two different sizes via compile-time
defines (the "application input" of paper Figure 4), and runs the
result on two different vendors.
"""

from repro import compile_circuit, ideal_distribution, rigetti_aspen3, umd_trapped_ion
from repro.scaffold import compile_scaffold

SOURCE = """
// Prepare an N-qubit GHZ state, then disentangle it again so the
// output is deterministic (a CHSH-style sanity circuit).
const int N = 4;

module ghz(qbit r[N]) {
    H(r[0]);
    for (int i = 0; i < N - 1; i++) {
        CNOT(r[i], r[i+1]);
    }
}

module unghz(qbit r[N]) {
    for (int i = N - 2; i >= 0; i--) {
        CNOT(r[i], r[i+1]);
    }
    H(r[0]);
}

module main(qbit q[N]) {
    ghz(q);
    unghz(q);
    X(q[N-1]);          // make the answer visibly non-trivial
    MeasZ(q);
}
"""


def main() -> None:
    for size in (4, 6):
        circuit = compile_scaffold(SOURCE, defines={"N": size})
        correct = "0" * (size - 1) + "1"
        print(f"N={size}: {len(circuit)} IR instructions")
        assert ideal_distribution(circuit)[correct] > 0.999

        for device in (rigetti_aspen3(), umd_trapped_ion()):
            if circuit.num_qubits > device.num_qubits:
                print(f"  {device.name}: too large (X)")
                continue
            program = compile_circuit(circuit, device)
            out = ideal_distribution(program.circuit)
            print(
                f"  {device.name}: {program.two_qubit_gate_count()} 2Q "
                f"gates, ideal P({correct}) = {out[correct]:.4f}"
            )
        print()
    print("Both sizes compile from the same source; only the define")
    print("changed - exactly how the paper feeds application inputs.")


if __name__ == "__main__":
    main()

"""Noise-adaptive recompilation across calibration days.

Run with::

    python examples/noise_adaptive_recompilation.py

The paper recommends recompiling programs against up-to-date calibration
data (section 7, "Noise rates and variability").  This example compiles
the same benchmark on IBMQ14 over a week of synthetic calibration days
and compares three policies:

* compile once, noise-aware, on day 0 and keep running the same binary,
* recompile noise-aware every day (TriQ-1QOptCN),
* the noise-unaware TriQ-1QOptC, which never reads calibration at all.
"""

from repro import (
    OptimizationLevel,
    bernstein_vazirani,
    compile_circuit,
    ibmq14_melbourne,
    monte_carlo_success_rate,
)
from repro.experiments.stats import geomean
from repro.experiments.tables import format_table

DAYS = range(7)


def main() -> None:
    circuit, correct = bernstein_vazirani(6)

    stale = compile_circuit(
        circuit, ibmq14_melbourne(0), level=OptimizationLevel.OPT_1QCN, day=0
    )

    rows = []
    fresh_rates, stale_rates, unaware_rates = [], [], []
    for day in DAYS:
        device = ibmq14_melbourne(day)
        fresh = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN, day=day
        )
        unaware = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QC, day=day
        )

        def rate(program):
            return monte_carlo_success_rate(
                program.circuit, device, correct, day=day, fault_samples=80
            ).success_rate

        fresh_sr, stale_sr, unaware_sr = rate(fresh), rate(stale), rate(unaware)
        fresh_rates.append(fresh_sr)
        stale_rates.append(stale_sr)
        unaware_rates.append(unaware_sr)
        rows.append(
            (day, fresh_sr, stale_sr, unaware_sr,
             str(fresh.initial_mapping.placement))
        )

    print(
        format_table(
            ["Day", "Recompiled daily", "Compiled day 0", "Noise-unaware",
             "Daily placement"],
            rows,
            title="BV6 on IBMQ14 across calibration days",
        )
    )
    print()
    print(f"geomean, recompiled daily : {geomean(fresh_rates):.3f}")
    print(f"geomean, stale day-0 build: {geomean(stale_rates):.3f}")
    print(f"geomean, noise-unaware    : {geomean(unaware_rates):.3f}")
    print()
    print(
        "Expected shape: both noise-aware policies clearly beat the\n"
        "noise-unaware compiler. Under this substrate's mild,\n"
        "mean-reverting drift the day-0 placement stays near-optimal, so\n"
        "daily recompilation roughly ties it; on hardware with regime\n"
        "shifts between calibrations (the paper's Figure 3 shows 9x\n"
        "swings), recompilation is what keeps the placement valid."
    )


if __name__ == "__main__":
    main()

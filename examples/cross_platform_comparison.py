"""Cross-platform study: the paper's Figure 12 in miniature.

Run with::

    python examples/cross_platform_comparison.py

Compiles a subset of the benchmark suite with TriQ-1QOptCN for all
seven study machines and prints the success-rate matrix, marking
benchmarks that do not fit a machine with "X" as the paper does.
"""

from repro import (
    OptimizationLevel,
    all_devices,
    benchmark_by_name,
    compile_circuit,
    monte_carlo_success_rate,
)
from repro.experiments.tables import format_table

BENCHMARKS = ["BV4", "HS4", "Toffoli", "Fredkin", "QFT"]


def main() -> None:
    rows = []
    for device in all_devices():
        row = [device.name]
        for name in BENCHMARKS:
            circuit, correct = benchmark_by_name(name).build()
            if circuit.num_qubits > device.num_qubits:
                row.append("X")
                continue
            program = compile_circuit(
                circuit, device, level=OptimizationLevel.OPT_1QCN
            )
            estimate = monte_carlo_success_rate(
                program.circuit, device, correct, fault_samples=60
            )
            row.append(f"{estimate.success_rate:.3f}")
        rows.append(row)
    print(
        format_table(
            ["System"] + BENCHMARKS,
            rows,
            title="Success rate by system (TriQ-1QOptCN)",
        )
    )
    print()
    print(
        "Expected shape (paper Fig. 12): UMDTI leads where it fits; the\n"
        "triangle benchmarks favor IBMQ5's triangle; QFT is hardest on\n"
        "sparse topologies."
    )


if __name__ == "__main__":
    main()

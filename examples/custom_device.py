"""Defining your own machine as a JSON config.

Run with::

    python examples/custom_device.py

TriQ's design point is that the device is an *input* to the toolflow
(paper Figure 4).  This example writes a hypothetical 6-qubit machine as
a JSON document, loads it as a :class:`repro.Device`, compiles a suite
benchmark for it, verifies the compilation, draws the circuit, samples
hardware-style shots, and prints the resulting histogram.
"""

import json
import tempfile

from repro import compile_circuit, draw_circuit, verify_compilation
from repro.devices.config import load_device
from repro.programs import bernstein_vazirani
from repro.sim.trajectories import sample_counts, success_rate_from_counts

CONFIG = {
    "name": "Hexagon-6 (hypothetical)",
    "vendor": "rigetti",
    "num_qubits": 6,
    "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]],
    "directed": False,
    "coherence_time_us": 25.0,
    "gate_time_us": 0.2,
    "calibration": {
        "two_qubit_error": {
            "0-1": 0.02, "1-2": 0.03, "2-3": 0.12,
            "3-4": 0.04, "4-5": 0.02, "0-5": 0.03,
        },
        "single_qubit_error": [0.002, 0.002, 0.004, 0.003, 0.002, 0.002],
        "readout_error": [0.03, 0.02, 0.08, 0.03, 0.02, 0.03],
    },
}


def main() -> None:
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json.dump(CONFIG, handle)
        path = handle.name

    device = load_device(path)
    print(device.describe())
    print()

    circuit, correct = bernstein_vazirani(4)
    program = compile_circuit(circuit, device)
    report = verify_compilation(circuit, program)
    print(f"compilation verified: TV distance "
          f"{report.total_variation_distance:.2e}")
    print(f"placement {program.initial_mapping.placement} "
          f"(avoiding the weak 2-3 edge and qubit 2's readout)")
    print()
    print("compiled circuit:")
    print(draw_circuit(program.circuit, qubit_prefix="q"))
    print()

    counts = sample_counts(program.circuit, device, trials=2048, seed=7)
    print("top outcomes over 2048 shots:")
    for bits, count in counts.most_common(5):
        marker = "  <-- correct" if bits == correct else ""
        print(f"  {bits}: {count}{marker}")
    print(
        f"success rate: "
        f"{success_rate_from_counts(counts, correct):.3f}"
    )


if __name__ == "__main__":
    main()

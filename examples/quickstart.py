"""Quickstart: compile one program for all three vendors and measure it.

Run with::

    python examples/quickstart.py

This walks the full TriQ pipeline (paper Figure 4): a Bernstein-Vazirani
program is compiled for an IBM, a Rigetti and a trapped-ion machine with
full noise-adaptive optimization, the vendor executables are printed,
and the simulated success rate is reported for each.
"""

from repro import (
    OptimizationLevel,
    bernstein_vazirani,
    compile_circuit,
    ibmq5_tenerife,
    monte_carlo_success_rate,
    rigetti_agave,
    umd_trapped_ion,
)


def main() -> None:
    circuit, correct = bernstein_vazirani(4)
    print(f"Program: {circuit.name}, correct answer {correct!r}")
    print(circuit)
    print()

    for device in (ibmq5_tenerife(), rigetti_agave(), umd_trapped_ion()):
        program = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN
        )
        estimate = monte_carlo_success_rate(
            program.circuit, device, correct, fault_samples=100
        )
        print("=" * 64)
        print(f"{device.name}  ({device.technology})")
        print(
            f"  placement: {program.initial_mapping.placement}, "
            f"{program.num_swaps} swaps, "
            f"{program.two_qubit_gate_count()} 2Q gates, "
            f"{program.one_qubit_pulse_count()} 1Q pulses"
        )
        print(
            f"  success rate: {estimate.success_rate:.3f} "
            f"(ideal {estimate.ideal_rate:.3f}, "
            f"clean-run probability {estimate.no_fault_probability:.3f})"
        )
        print("  executable:")
        for line in program.executable().splitlines()[:12]:
            print(f"    {line}")
        print("    ...")


if __name__ == "__main__":
    main()

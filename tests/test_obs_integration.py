"""End-to-end tests: observability threaded through compile, sweep, CLI.

These exercise the real pipeline and sweep engine with a live tracer,
and — the load-bearing property — prove that turning observability on
changes no scientific output: journal digests and run identity are
byte-identical with and without it.
"""

import json

import pytest

from repro.cli import main
from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import device_by_name
from repro.experiments.journal import SweepJournal
from repro.experiments.parallel import run_sweep
from repro.obs import ObsConfig, Tracer, parse_prometheus, tracer_context
from repro.programs import benchmark_by_name

FAST = dict(fault_samples=5, task_timeout_s=None)


def _bv4_circuit():
    circuit, _ = benchmark_by_name("BV4").build()
    return circuit


class TestPipelineSpans:
    def test_compile_emits_the_pass_hierarchy(self):
        device = device_by_name("tenerife")
        compiler = TriQCompiler(device, level=OptimizationLevel.OPT_1QCN)
        tracer = Tracer()
        with tracer_context(tracer):
            compiler.compile(_bv4_circuit())
        names = [s.name for s in tracer.walk()]
        for expected in ("compile", "decompose", "map", "route",
                         "translate", "1qopt"):
            assert expected in names, f"missing span {expected!r}"
        root = tracer.roots[0]
        assert root.name == "compile"
        assert root.attrs["device"] == device.name
        assert root.attrs["level"] == "TriQ-1QOptCN"
        # Every pass span is a child of the compile root.
        assert {c.name for c in root.children} >= {"decompose", "map", "route"}

    def test_compile_output_identical_traced_or_not(self):
        device = device_by_name("tenerife")
        level = OptimizationLevel.OPT_1QCN
        plain = TriQCompiler(device, level=level).compile(_bv4_circuit())
        with tracer_context(Tracer()):
            traced = TriQCompiler(device, level=level).compile(_bv4_circuit())
        assert traced.executable() == plain.executable()


class TestSerialSweepArtifacts:
    def test_trace_metrics_and_summary(self, tmp_path):
        obs_dir = tmp_path / "obs"
        report = run_sweep(
            "tenerife", [OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4", "HS2"],
            cache_dir=tmp_path / "cache",
            obs=ObsConfig(trace=True, out_dir=obs_dir),
            **FAST,
        )
        assert report.obs_dir == obs_dir
        trace = json.loads((obs_dir / "trace.json").read_text())
        names = [e["name"] for e in trace["traceEvents"]]
        assert "sweep" in names and "measure" in names
        assert "compile" in names and "success" in names
        series = parse_prometheus((obs_dir / "metrics.prom").read_text())
        assert sum(series["repro_sweep_tasks_total"].values()) == 2
        assert report.metrics is not None
        assert report.metrics.counter("repro_sweep_tasks_total").total() == 2
        summary = report.summary()
        assert "task latency p50/p90/p99:" in summary
        assert f"observability artifacts: {obs_dir}" in summary

    def test_metrics_populated_even_with_obs_off(self, tmp_path):
        report = run_sweep(
            "tenerife", [OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4"], cache_dir=tmp_path / "cache", **FAST,
        )
        assert report.obs_dir is None
        assert report.metrics.counter("repro_sweep_tasks_total").total() == 1
        assert "task latency p50/p90/p99:" in report.summary()

    def test_profile_writes_supervisor_pstats(self, tmp_path):
        obs_dir = tmp_path / "obs"
        run_sweep(
            "tenerife", [OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4"], cache_dir=tmp_path / "cache",
            obs=ObsConfig(trace=True, profile=True, out_dir=obs_dir),
            **FAST,
        )
        assert list(obs_dir.glob("supervisor-*.pstats"))

    def test_stale_engine_artifacts_are_cleared(self, tmp_path):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        stale = obs_dir / "worker-999-trace.json"
        stale.write_text("{}")
        unrelated = obs_dir / "notes.txt"
        unrelated.write_text("keep me")
        run_sweep(
            "tenerife", [OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4"], cache_dir=tmp_path / "cache",
            obs=ObsConfig(trace=True, out_dir=obs_dir), **FAST,
        )
        assert not stale.exists()
        assert unrelated.read_text() == "keep me"


class TestPoolSweepArtifacts:
    def test_worker_traces_merge_with_supervisor(self, tmp_path):
        obs_dir = tmp_path / "obs"
        report = run_sweep(
            "tenerife", [OptimizationLevel.N, OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4", "HS2"],
            workers=2,
            cache_dir=tmp_path / "cache",
            obs=ObsConfig(trace=True, profile=True, out_dir=obs_dir),
            **FAST,
        )
        if report.mode != "process-pool":
            pytest.skip(f"pool unavailable: {report.fallback_reason}")
        assert list(obs_dir.glob("worker-*-trace.json"))
        assert list(obs_dir.glob("worker-*.pstats"))
        trace = json.loads((obs_dir / "trace.json").read_text())
        events = trace["traceEvents"]
        assert len({e["pid"] for e in events}) >= 2
        task_events = [e for e in events if e["name"] == "sweep.task"]
        assert len(task_events) == 4
        assert {e["args"]["benchmark"] for e in task_events} == {"BV4", "HS2"}
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)


class TestDeterminismInvariance:
    """Observability must not leak into scientific outputs."""

    def _sweep(self, tmp_path, tag, obs):
        return run_sweep(
            "tenerife", [OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4", "HS2"],
            cache_dir=tmp_path / f"cache-{tag}",
            obs=obs,
            **FAST,
        )

    def test_journal_digests_and_run_id_unchanged(self, tmp_path):
        plain = self._sweep(tmp_path, "off", None)
        traced = self._sweep(
            tmp_path, "on",
            ObsConfig(trace=True, profile=True, out_dir=tmp_path / "obs"),
        )
        assert plain.run_id == traced.run_id
        digests_off = {
            r["task"] for r in SweepJournal(plain.journal_path).records()
        }
        digests_on = {
            r["task"] for r in SweepJournal(traced.journal_path).records()
        }
        assert digests_off and digests_off == digests_on

    def test_measurements_identical_up_to_wall_clock(self, tmp_path):
        plain = self._sweep(tmp_path, "off2", None)
        traced = self._sweep(
            tmp_path, "on2", ObsConfig(trace=True, out_dir=tmp_path / "obs2")
        )
        assert len(plain.measurements) == len(traced.measurements)
        for a, b in zip(plain.measurements, traced.measurements):
            fields_a, fields_b = dict(vars(a)), dict(vars(b))
            # compile_time_s and solver_time_s are wall clock: they
            # differ between ANY two fresh runs, observability or not.
            # Everything else must be byte-identical.
            for fields in (fields_a, fields_b):
                fields.pop("compile_time_s")
                fields.pop("solver_time_s")
            assert fields_a == fields_b


class TestJournalRecords:
    def test_records_keeps_append_order_and_duplicates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"v": 1, "task": "a", "report": null}\n'
            "garbage line\n"
            '{"v": 1, "task": "b", "report": null}\n'
            '{"v": 1, "task": "a", "report": null}\n'
            '{"v": 99, "task": "c"}\n'
        )
        records = SweepJournal(path).records()
        assert [r["task"] for r in records] == ["a", "b", "a"]

    def test_records_missing_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").records() == []


class TestCliObservability:
    def test_sweep_profile_emits_all_artifacts(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        rc = main([
            "sweep", "-d", "tenerife", "-b", "BV4", "-l", "1qoptcn",
            "--fault-samples", "5",
            "--cache-dir", str(tmp_path / "cache"),
            "--profile", "--obs-dir", str(obs_dir),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "repro profile" in err
        assert (obs_dir / "trace.json").exists()
        assert parse_prometheus((obs_dir / "metrics.prom").read_text())
        assert list(obs_dir.glob("supervisor-*.pstats"))

    def test_profile_command_prints_tables(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        main([
            "sweep", "-d", "tenerife", "-b", "BV4", "-l", "1qoptcn",
            "--fault-samples", "5",
            "--cache-dir", str(tmp_path / "cache"),
            "--profile", "--obs-dir", str(obs_dir),
        ])
        capsys.readouterr()
        assert main(["profile", str(obs_dir)]) == 0
        out = capsys.readouterr().out.lower()
        assert "hot passes" in out
        assert "compile" in out
        assert "top functions" in out

    def test_profile_command_empty_dir_fails(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path)]) == 2
        assert "artifacts found" in capsys.readouterr().err

    def test_trace_command_renders_tree(self, tmp_path, capsys):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("route"):
                pass
        path = tracer.write_chrome_trace(tmp_path / "trace.json")
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compile" in out and "route" in out

    def test_trace_command_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text('{"traceEvents": []}')
        assert main(["trace", str(path)]) == 2

    def test_compile_profile_session(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        rc = main([
            "compile", "-b", "BV4", "-d", "tenerife", "-l", "1qoptcn",
            "--no-cache", "--profile", "--obs-dir", str(obs_dir),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "compile" in err  # span tree printed to stderr
        assert (obs_dir / "compile-trace.json").exists()
        assert (obs_dir / "compile.pstats").exists()
        # --no-cache means no cache events: the metrics file exists but
        # carries no samples.
        assert (obs_dir / "compile-metrics.prom").exists()

    def test_compile_obs_dir_alone_traces_without_profiling(
        self, tmp_path, capsys
    ):
        obs_dir = tmp_path / "obs"
        rc = main([
            "compile", "-b", "BV4", "-d", "tenerife", "-l", "1qoptcn",
            "--no-cache", "--obs-dir", str(obs_dir),
        ])
        assert rc == 0
        capsys.readouterr()
        assert (obs_dir / "compile-trace.json").exists()
        assert not (obs_dir / "compile.pstats").exists()

    def test_cache_events_counted_through_observer_hook(self, tmp_path):
        obs_dir = tmp_path / "obs"
        cache_dir = tmp_path / "cache"
        argv = [
            "compile", "-b", "BV4", "-d", "tenerife", "-l", "1qoptcn",
            "--cache-dir", str(cache_dir),
            "--obs-dir", str(obs_dir),
        ]
        assert main(argv) == 0
        first = parse_prometheus(
            (obs_dir / "compile-metrics.prom").read_text()
        )["repro_cache_events_total"]
        assert first.get('{"event": "miss"}', 0) > 0
        assert first.get('{"event": "hit"}', 0) == 0
        assert main(argv) == 0  # warm: same cache, fresh session
        second = parse_prometheus(
            (obs_dir / "compile-metrics.prom").read_text()
        )["repro_cache_events_total"]
        assert second.get('{"event": "hit"}', 0) > 0
        assert second.get('{"event": "miss"}', 0) == 0

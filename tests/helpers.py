"""Shared helper utilities for the test suite.

Also home to the per-test wall-clock guard used by *both* pytest
harnesses in this repo — ``tests/conftest.py`` and
``benchmarks/conftest.py`` wrap every test in :func:`alarm_timeout`, so
a hung test (deadlocked pool, stuck queue, runaway solve) fails loudly
instead of wedging CI.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from repro.devices import Device, Topology
from repro.devices.calibration import Calibration
from repro.devices.gatesets import GATESET_BY_FAMILY, VendorFamily
from repro.devices.library import StaticCalibrationModel


#: Environment variable overriding the per-test wall-clock budget
#: (seconds; 0 disables the guard).
TEST_TIMEOUT_ENV = "REPRO_TEST_TIMEOUT_S"

#: Default per-test budget when the environment does not say otherwise.
DEFAULT_TEST_TIMEOUT_S = 180.0


def test_timeout_s() -> float:
    """The configured per-test wall-clock budget in seconds."""
    return float(os.environ.get(TEST_TIMEOUT_ENV, str(DEFAULT_TEST_TIMEOUT_S)))


def alarm_usable(timeout_s: float) -> bool:
    """Whether a SIGALRM-based timeout can work here.

    Requires a positive budget, a platform with ``SIGALRM``, and the
    main thread (signal handlers only fire there).
    """
    return (
        timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def alarm_timeout(timeout_s: Optional[float] = None) -> Iterator[None]:
    """Raise ``TimeoutError`` if the body outlives its wall-clock budget.

    ``timeout_s=None`` reads the budget from ``$REPRO_TEST_TIMEOUT_S``
    (default 180 s).  Degrades to a no-op off the main thread or on
    platforms without ``SIGALRM``; the previous handler and any pending
    itimer are always restored.
    """
    budget = test_timeout_s() if timeout_s is None else timeout_s
    if not alarm_usable(budget):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded the {budget:.0f}s global timeout "
            f"(set {TEST_TIMEOUT_ENV} to adjust, 0 to disable)"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def make_device(
    topology: Topology,
    family: VendorFamily = VendorFamily.IBM,
    two_qubit_error: float = 0.05,
    single_qubit_error: float = 0.002,
    readout_error: float = 0.03,
    name: str = "test device",
) -> Device:
    """A device with uniform, hand-set error rates."""
    calibration = Calibration(
        two_qubit_error={e: two_qubit_error for e in topology.edges()},
        single_qubit_error={
            q: single_qubit_error for q in range(topology.num_qubits)
        },
        readout_error={q: readout_error for q in range(topology.num_qubits)},
    )
    return Device(
        name=name,
        gate_set=GATESET_BY_FAMILY[family],
        topology=topology,
        calibration_model=StaticCalibrationModel(calibration),
        coherence_time_us=100.0,
    )


def make_noiseless_device(
    topology: Topology, family: VendorFamily = VendorFamily.IBM
) -> Device:
    """A device whose gates essentially never fail."""
    return make_device(
        topology,
        family,
        two_qubit_error=1e-5,
        single_qubit_error=1e-5,
        readout_error=1e-5,
        name="noiseless device",
    )


def assert_equal_up_to_phase(
    actual: np.ndarray, expected: np.ndarray, atol: float = 1e-8
) -> None:
    """Assert two unitaries are equal up to a global phase."""
    idx = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
    assert abs(expected[idx]) > 1e-12, "expected matrix is zero"
    phase = actual[idx] / expected[idx]
    assert abs(abs(phase) - 1.0) < 1e-6, (
        f"matrices differ in magnitude: |phase| = {abs(phase)}"
    )
    np.testing.assert_allclose(actual, phase * expected, atol=atol)



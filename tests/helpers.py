"""Shared helper utilities for the test suite."""

from __future__ import annotations

import numpy as np

from repro.devices import Device, Topology
from repro.devices.calibration import Calibration
from repro.devices.gatesets import GATESET_BY_FAMILY, VendorFamily
from repro.devices.library import StaticCalibrationModel


def make_device(
    topology: Topology,
    family: VendorFamily = VendorFamily.IBM,
    two_qubit_error: float = 0.05,
    single_qubit_error: float = 0.002,
    readout_error: float = 0.03,
    name: str = "test device",
) -> Device:
    """A device with uniform, hand-set error rates."""
    calibration = Calibration(
        two_qubit_error={e: two_qubit_error for e in topology.edges()},
        single_qubit_error={
            q: single_qubit_error for q in range(topology.num_qubits)
        },
        readout_error={q: readout_error for q in range(topology.num_qubits)},
    )
    return Device(
        name=name,
        gate_set=GATESET_BY_FAMILY[family],
        topology=topology,
        calibration_model=StaticCalibrationModel(calibration),
        coherence_time_us=100.0,
    )


def make_noiseless_device(
    topology: Topology, family: VendorFamily = VendorFamily.IBM
) -> Device:
    """A device whose gates essentially never fail."""
    return make_device(
        topology,
        family,
        two_qubit_error=1e-5,
        single_qubit_error=1e-5,
        readout_error=1e-5,
        name="noiseless device",
    )


def assert_equal_up_to_phase(
    actual: np.ndarray, expected: np.ndarray, atol: float = 1e-8
) -> None:
    """Assert two unitaries are equal up to a global phase."""
    idx = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
    assert abs(expected[idx]) > 1e-12, "expected matrix is zero"
    phase = actual[idx] / expected[idx]
    assert abs(abs(phase) - 1.0) < 1e-6, (
        f"matrices differ in magnitude: |phase| = {abs(phase)}"
    )
    np.testing.assert_allclose(actual, phase * expected, atol=atol)



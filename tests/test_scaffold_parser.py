"""Tests for the Scaffold parser."""

import pytest

from repro.scaffold import ScaffoldSyntaxError, parse_program
from repro.scaffold.ast_nodes import (
    BinaryOp,
    ForLoop,
    GateCall,
    IfStatement,
    IntDecl,
    QubitRef,
)


class TestModules:
    def test_simple_module(self):
        program = parse_program("module main(qbit q[3]) { H(q[0]); }")
        module = program.module("main")
        assert module.params[0].name == "q"
        assert isinstance(module.body[0], GateCall)

    def test_scalar_qbit_param(self):
        program = parse_program("module main(qbit a) { X(a); }")
        assert program.module("main").params[0].size is None

    def test_multiple_modules(self):
        program = parse_program(
            "module bell(qbit a, qbit b) { H(a); CNOT(a, b); }\n"
            "module main(qbit q[2]) { bell(q[0], q[1]); }"
        )
        assert {m.name for m in program.modules} == {"bell", "main"}

    def test_missing_module_keyword(self):
        with pytest.raises(ScaffoldSyntaxError, match="module"):
            parse_program("int x = 3;")

    def test_unknown_module_lookup(self):
        program = parse_program("module main(qbit q) { H(q); }")
        with pytest.raises(KeyError):
            program.module("other")

    def test_const_declarations(self):
        program = parse_program(
            "const int N = 4; module main(qbit q[N]) { H(q[0]); }"
        )
        assert program.constants[0].name == "N"


class TestStatements:
    def test_for_loop(self):
        program = parse_program(
            "module main(qbit q[4]) {"
            " for (int i = 0; i < 4; i++) { H(q[i]); } }"
        )
        loop = program.module("main").body[0]
        assert isinstance(loop, ForLoop)
        assert loop.var == "i"
        assert loop.comparison == "<"

    def test_for_loop_with_step(self):
        program = parse_program(
            "module main(qbit q[8]) {"
            " for (int i = 0; i < 8; i = i + 2) { H(q[i]); } }"
        )
        loop = program.module("main").body[0]
        assert isinstance(loop, ForLoop)

    def test_for_wrong_variable_in_condition(self):
        with pytest.raises(ScaffoldSyntaxError, match="loop condition"):
            parse_program(
                "module main(qbit q[4]) {"
                " for (int i = 0; j < 4; i++) { H(q[i]); } }"
            )

    def test_if_else(self):
        program = parse_program(
            "module main(qbit q[2]) {"
            " if (1 == 1) { H(q[0]); } else { X(q[0]); } }"
        )
        stmt = program.module("main").body[0]
        assert isinstance(stmt, IfStatement)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_int_decl_and_assignment(self):
        program = parse_program(
            "module main(qbit q) { int k = 2; k = k * 3; H(q); }"
        )
        body = program.module("main").body
        assert isinstance(body[0], IntDecl)

    def test_missing_semicolon(self):
        with pytest.raises(ScaffoldSyntaxError):
            parse_program("module main(qbit q) { H(q) }")


class TestExpressions:
    def test_precedence(self):
        program = parse_program("module main(qbit q) { Rz(q, 1 + 2 * 3); }")
        call = program.module("main").body[0]
        expr = call.args[1]
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses(self):
        program = parse_program("module main(qbit q) { Rz(q, (1 + 2) * 3); }")
        expr = program.module("main").body[0].args[1]
        assert expr.op == "*"

    def test_unary_minus(self):
        program = parse_program("module main(qbit q) { Rz(q, -pi / 2); }")
        assert program.module("main").body[0].args[1] is not None

    def test_indexed_arg_is_qubit_ref(self):
        program = parse_program("module main(qbit q[2]) { CNOT(q[0], q[1]); }")
        call = program.module("main").body[0]
        assert all(isinstance(arg, QubitRef) for arg in call.args)

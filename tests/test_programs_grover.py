"""Tests for the Grover search workload."""

import pytest

from repro import compile_circuit, ibmq5_tenerife, umd_trapped_ion
from repro.programs.grover import (
    grover_search,
    ideal_success_probability,
    optimal_iterations,
)
from repro.sim import ideal_distribution


class TestTheory:
    def test_optimal_iterations(self):
        assert optimal_iterations(2) == 1
        assert optimal_iterations(3) == 2

    def test_two_qubit_success_is_exact(self):
        assert ideal_success_probability(2, 1) == pytest.approx(1.0)

    def test_three_qubit_success(self):
        assert ideal_success_probability(3, 2) == pytest.approx(
            0.9453, abs=1e-3
        )


class TestCircuit:
    @pytest.mark.parametrize("marked", ["11", "01", "10", "00"])
    def test_two_qubit_finds_any_marked_state(self, marked):
        circuit, out = grover_search(2, marked)
        assert out == marked
        assert ideal_distribution(circuit)[marked] == pytest.approx(1.0)

    @pytest.mark.parametrize("marked", ["111", "010", "100"])
    def test_three_qubit_marked_state_dominates(self, marked):
        circuit, out = grover_search(3, marked)
        distribution = ideal_distribution(circuit)
        assert distribution[marked] == pytest.approx(
            ideal_success_probability(3, 2), abs=1e-9
        )
        assert max(distribution, key=distribution.get) == marked

    def test_more_iterations_overshoot(self):
        # Grover over-rotates past the optimum.
        circuit, marked = grover_search(3, iterations=4)
        over = ideal_distribution(circuit)[marked]
        assert over < ideal_success_probability(3, 2)

    def test_unsupported_size(self):
        with pytest.raises(ValueError, match="supports"):
            grover_search(4)

    def test_bad_marked_state(self):
        with pytest.raises(ValueError, match="bit string"):
            grover_search(2, marked="2x")

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            grover_search(2, iterations=0)


class TestCompiled:
    def test_compiles_and_stays_correct(self):
        circuit, marked = grover_search(3)
        for device in (ibmq5_tenerife(), umd_trapped_ion()):
            program = compile_circuit(circuit, device)
            distribution = ideal_distribution(program.circuit)
            assert distribution[marked] == pytest.approx(
                ideal_success_probability(3, 2), abs=1e-9
            )

"""Tests for the reliability matrix (paper Figure 6 semantics)."""

import numpy as np
import pytest

from tests.helpers import make_device
from repro.compiler.reliability import compute_reliability
from repro.devices import Topology, example_8q_device
from repro.devices.gatesets import VendorFamily

#: Entries published in paper Figure 6(b).
PAPER_FIG6 = {
    (0, 1): 0.9, (0, 2): 0.58, (0, 3): 0.33, (0, 4): 0.9,
    (0, 5): 0.65, (0, 6): 0.42, (0, 7): 0.24,
    (1, 2): 0.8, (1, 3): 0.46, (1, 6): 0.58,
    (2, 6): 0.7, (3, 7): 0.8,
}


class TestFigure6:
    def test_published_entries(self):
        reliability = compute_reliability(example_8q_device())
        for (a, b), expected in PAPER_FIG6.items():
            assert reliability.matrix[a, b] == pytest.approx(
                expected, abs=0.01
            ), f"entry ({a},{b})"

    def test_worked_example_1_6(self):
        # Swap 1 next to 5 (0.9^3), then gate 5-6 (0.8) = 0.583.
        reliability = compute_reliability(example_8q_device())
        assert reliability.matrix[1, 6] == pytest.approx(
            0.9**3 * 0.8, abs=1e-9
        )
        assert reliability.best_neighbor(1, 6) == 5
        assert reliability.swap_path(1, 5) == [1, 5]

    def test_adjacent_pair_needs_no_swaps(self):
        reliability = compute_reliability(example_8q_device())
        assert reliability.best_neighbor(0, 1) == 0
        assert reliability.swap_path(0, 0) == [0]


class TestStructure:
    def test_diagonal_is_one(self):
        reliability = compute_reliability(example_8q_device())
        np.testing.assert_allclose(np.diag(reliability.matrix), 1.0)

    def test_matrix_asymmetry_matches_paper(self):
        # The swap path moves the *control*, so the matrix is not
        # symmetric: paper Figure 6(b) has (0,2)=0.58 but (2,0)=0.46.
        reliability = compute_reliability(example_8q_device())
        assert reliability.matrix[0, 2] == pytest.approx(0.583, abs=0.01)
        assert reliability.matrix[2, 0] == pytest.approx(0.46, abs=0.01)

    def test_symmetric_helper_has_unit_diagonal(self):
        sym = compute_reliability(example_8q_device()).symmetric()
        np.testing.assert_allclose(np.diag(sym), 1.0)
        assert (sym > 0).all()

    def test_swap_path_reconstruction(self):
        device = make_device(Topology.line(5))
        reliability = compute_reliability(device)
        assert reliability.swap_path(0, 4) == [0, 1, 2, 3, 4]

    def test_disconnected_raises(self):
        device = make_device(Topology(4, [(0, 1), (2, 3)]))
        reliability = compute_reliability(device)
        with pytest.raises(ValueError, match="disconnected"):
            reliability.swap_path(0, 3)

    def test_readout_vector(self):
        device = make_device(Topology.line(3), readout_error=0.1)
        reliability = compute_reliability(device)
        np.testing.assert_allclose(reliability.readout, 0.9)


class TestNoiseAwareness:
    def test_noise_unaware_uses_average(self):
        device = example_8q_device()
        reliability = compute_reliability(device, noise_aware=False)
        # All direct edges share the average reliability.
        edge_values = {
            round(reliability.gate_reliability[a, b], 9)
            for a, b in device.topology.graph.edges()
        }
        assert len(edge_values) == 1

    def test_noise_unaware_minimizes_hops(self):
        # With uniform rates, the best path is any shortest path, so the
        # matrix value is avg^(3*(hops-1) + 1).
        device = example_8q_device()
        reliability = compute_reliability(device, noise_aware=False)
        avg = 1 - device.calibration().average_two_qubit_error()
        assert reliability.matrix[0, 2] == pytest.approx(avg**4, rel=1e-6)

    def test_noise_aware_prefers_reliable_detour(self):
        # Edge (a, b) is terrible; the 3-hop detour wins.
        topo = Topology(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        device = make_device(topo)
        cal = device.calibration()
        cal.two_qubit_error[frozenset((0, 3))] = 0.74
        reliability = compute_reliability(device)
        # Path 0-1-2 swaps then gate 2-3 beats direct gate 0-3.
        direct = 1 - 0.74
        detour = (1 - 0.05) ** 6 * (1 - 0.05)
        assert reliability.matrix[0, 3] == pytest.approx(
            max(direct, detour), rel=1e-6
        )


class TestDirectedOverheads:
    def test_orientation_penalty_on_reversed_direction(self):
        topo = Topology(2, [(0, 1)], directed=True)
        device = make_device(topo, single_qubit_error=0.05)
        reliability = compute_reliability(device)
        # Hardware drives 0->1; 1->0 costs 4 extra Hadamards.
        assert reliability.gate_reliability[0, 1] > (
            reliability.gate_reliability[1, 0]
        )
        penalty = (1 - 0.05) ** 4
        assert reliability.gate_reliability[1, 0] == pytest.approx(
            reliability.gate_reliability[0, 1] * penalty
        )

    def test_undirected_no_penalty(self):
        device = make_device(
            Topology(2, [(0, 1)]), family=VendorFamily.RIGETTI
        )
        reliability = compute_reliability(device)
        assert reliability.gate_reliability[0, 1] == pytest.approx(
            reliability.gate_reliability[1, 0]
        )

"""Tests for shot-by-shot trajectory sampling."""

import pytest

from tests.helpers import make_device, make_noiseless_device
from repro.devices import Topology
from repro.ir import Circuit
from repro.sim import monte_carlo_success_rate
from repro.sim.trajectories import (
    _reference_sample_counts,
    sample_counts,
    success_rate_from_counts,
)


def bell():
    return Circuit(2).x(0).cx(0, 1).measure_all()


class TestSampleCounts:
    def test_total_trials(self):
        device = make_device(Topology.line(2))
        counts = sample_counts(bell(), device, trials=200)
        assert sum(counts.values()) == 200

    def test_noiseless_deterministic(self):
        device = make_noiseless_device(Topology.line(2))
        counts = sample_counts(bell(), device, trials=300)
        assert counts["11"] >= 299  # readout error is 1e-5

    def test_noiseless_superposition_splits(self):
        device = make_noiseless_device(Topology.line(2))
        circuit = Circuit(2).h(0).measure(0, cbit=0).measure(1, cbit=1)
        counts = sample_counts(circuit, device, trials=2000, seed=3)
        assert counts["00"] + counts["10"] == 2000
        assert 800 < counts["00"] < 1200

    def test_deterministic_given_seed(self):
        device = make_device(Topology.line(2))
        a = sample_counts(bell(), device, trials=100, seed=9)
        b = sample_counts(bell(), device, trials=100, seed=9)
        assert a == b

    def test_requires_measurements(self):
        device = make_device(Topology.line(2))
        with pytest.raises(ValueError, match="no measurements"):
            sample_counts(Circuit(2).h(0), device)

    def test_requires_positive_trials(self):
        device = make_device(Topology.line(2))
        with pytest.raises(ValueError, match="one trial"):
            sample_counts(bell(), device, trials=0)

    def test_agrees_with_estimator(self):
        # The raw-shots protocol and the Rao-Blackwellized estimator
        # measure the same quantity.
        device = make_device(
            Topology.line(2), two_qubit_error=0.1, readout_error=0.05
        )
        counts = sample_counts(bell(), device, trials=6000, seed=21)
        raw = success_rate_from_counts(counts, "11")
        estimate = monte_carlo_success_rate(
            bell(), device, "11", fault_samples=2000
        )
        assert raw == pytest.approx(estimate.success_rate, abs=0.03)


class TestBoundedConfigCache:
    """The fault-configuration working set is bounded in both paths.

    The legacy loop's per-distribution cache used to grow without
    bound — one entry per distinct fault pattern, however many the
    trials drew.  It is now LRU-bounded (``max_cached_configs``), and
    the batched path simulates in chunks of ``max_configs_in_flight``.
    Eviction must never change the histogram: a re-drawn evicted
    configuration re-simulates to the identical distribution.
    """

    def _noisy_device(self):
        return make_device(
            Topology.line(3), two_qubit_error=0.15, readout_error=0.05
        )

    def _circuit(self):
        return Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()

    def test_eviction_preserves_exact_counts(self):
        # max_cached_configs=1 forces an eviction on every distinct
        # configuration change; the counts must not move.
        device = self._noisy_device()
        roomy = _reference_sample_counts(
            self._circuit(), device, trials=400, seed=5,
            max_cached_configs=1024,
        )
        tight = _reference_sample_counts(
            self._circuit(), device, trials=400, seed=5,
            max_cached_configs=1,
        )
        assert tight == roomy

    def test_chunk_size_preserves_exact_counts(self):
        device = self._noisy_device()
        roomy = sample_counts(
            self._circuit(), device, trials=400, seed=5,
            max_configs_in_flight=1024,
        )
        tight = sample_counts(
            self._circuit(), device, trials=400, seed=5,
            max_configs_in_flight=1,
        )
        assert tight == roomy

    def test_batched_matches_reference_under_eviction(self):
        device = self._noisy_device()
        batched = sample_counts(
            self._circuit(), device, trials=300, seed=9,
            max_configs_in_flight=2,
        )
        reference = _reference_sample_counts(
            self._circuit(), device, trials=300, seed=9,
            max_cached_configs=2,
        )
        assert batched == reference

    def test_cache_bound_validated(self):
        device = self._noisy_device()
        with pytest.raises(ValueError, match="at least one cached"):
            _reference_sample_counts(
                self._circuit(), device, trials=10, max_cached_configs=0
            )


class TestSuccessFromCounts:
    def test_fraction(self):
        from collections import Counter

        counts = Counter({"11": 75, "00": 25})
        assert success_rate_from_counts(counts, "11") == 0.75

    def test_empty_rejected(self):
        from collections import Counter

        with pytest.raises(ValueError):
            success_rate_from_counts(Counter(), "11")

"""The Scaffold-source suite must match the builtin benchmarks."""

import pytest

from repro.programs import benchmark_by_name
from repro.programs.scaffold_sources import (
    SCAFFOLD_SUITE,
    scaffold_benchmark,
    scaffold_suite,
)
from repro.sim import ideal_distribution

NAMES = list(SCAFFOLD_SUITE)


class TestScaffoldSuite:
    def test_all_twelve_present(self):
        assert len(NAMES) == 12

    @pytest.mark.parametrize("name", NAMES)
    def test_correct_output(self, name):
        circuit, correct = scaffold_benchmark(name)
        assert ideal_distribution(circuit)[correct] == pytest.approx(
            1.0, abs=1e-9
        )

    @pytest.mark.parametrize("name", NAMES)
    def test_matches_builtin_distribution(self, name):
        from_source, correct_src = scaffold_benchmark(name)
        builtin, correct_builtin = benchmark_by_name(name).build()
        assert correct_src == correct_builtin
        assert from_source.num_qubits == builtin.num_qubits
        assert ideal_distribution(from_source) == pytest.approx(
            ideal_distribution(builtin), abs=1e-9
        )

    @pytest.mark.parametrize("name", ["BV6", "HS4", "QFT"])
    def test_same_two_qubit_structure(self, name):
        from repro.ir import decompose_to_basis
        from repro.ir.dag import interaction_counts

        from_source, _ = scaffold_benchmark(name)
        builtin, _ = benchmark_by_name(name).build()
        assert interaction_counts(
            decompose_to_basis(from_source)
        ) == interaction_counts(decompose_to_basis(builtin))

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            scaffold_benchmark("Shor")

    def test_suite_iteration(self):
        suite = scaffold_suite()
        assert [name for name, _, _ in suite] == NAMES

    @pytest.mark.parametrize("name", ["BV4", "Toffoli", "QFT"])
    def test_compiles_for_hardware(self, name):
        from repro import compile_circuit, ibmq14_melbourne

        circuit, correct = scaffold_benchmark(name)
        program = compile_circuit(circuit, ibmq14_melbourne())
        assert ideal_distribution(program.circuit)[correct] == pytest.approx(
            1.0, abs=1e-9
        )

"""The mapper portfolio's differential gate, scale smoke, and MAP002.

Every device of the study races the anytime heuristics against the
exact solver on the *identical* assignment problems the compiler sees
(via :func:`repro.compiler.mapping.mapping_problem` on decomposed
circuits):

* **Bit-identity** — a portfolio whose exact stage finishes must return
  the bit-identical placement of a cold exact solve (the bound-only
  warm-hint guarantee, PR 5).
* **Differential bound** — the pure-heuristic mapper must exact-match
  the proven optimum on the small machines (<= 8 hardware qubits, where
  the exhaustive stage enumerates every placement) and stay within
  0.95x of it everywhere else.  See TESTING.md, "Mapper differential
  gate", before touching these thresholds.
* **Scale smoke** — on 50/72/100-qubit grids the portfolio stays inside
  a sub-10s wall budget and beats the budget-cut exact incumbent, while
  exact alone cannot prove optimality under the same budget.
* **MAP002** — the divergence contract turns any breach of the above
  into a stable structured diagnostic instead of a silent quality loss.
"""

import time

import pytest

from repro.compiler.mapping import InitialMapping, mapping_problem, smt_mapping
from repro.compiler.pipeline import OptimizationLevel, TriQCompiler
from repro.compiler.reliability import compute_reliability
from repro.contracts import (
    ERROR_CODES,
    ContractError,
    MapperDivergenceError,
    check_mapper_divergence,
)
from repro.contracts.fuzz import classify
from repro.devices.library import (
    all_devices,
    example_8q_device,
    google_bristlecone_72,
    ibmq5_tenerife,
    synthetic_grid,
)
from repro.ir.decompose import decompose_to_basis
from repro.programs.bv import bernstein_vazirani
from repro.programs.gates3q import toffoli_benchmark
from repro.programs.registry import standard_suite
from repro.smt import MaxMinSolver, PortfolioSolver

#: Devices small enough that the portfolio's exhaustive stage covers
#: every injective placement — there the heuristic answer must *equal*
#: the proven optimum, not just approximate it.
EXACT_MATCH_MAX_QUBITS = 8

#: Differential bound for the big machines: the heuristic mapper keeps
#: at least this fraction of the proven-optimal objective.  Measured
#: floor across the full matrix when this gate landed: 0.9923.
MIN_HEURISTIC_RATIO = 0.95


def fitting_problems(device):
    """(benchmark name, assignment problem) for every suite cell that fits."""
    reliability = compute_reliability(device)
    for benchmark in standard_suite():
        circuit, _ = benchmark.build()
        if circuit.num_qubits > device.num_qubits:
            continue
        decomposed = decompose_to_basis(circuit)
        yield benchmark.name, mapping_problem(decomposed, device, reliability)


class TestDifferentialGate:
    """7 paper devices x 12 benchmarks, three clauses per fitting cell."""

    @pytest.mark.parametrize(
        "device", all_devices(), ids=lambda d: d.name.replace(" ", "-")
    )
    def test_every_fitting_benchmark(self, device):
        checked = 0
        for name, problem in fitting_problems(device):
            exact = MaxMinSolver(problem).solve()
            assert exact.stats.proven_optimal, (device.name, name)

            # Clause 1: portfolio with a finishing exact stage is
            # bit-identical to the cold exact solve.
            raced = PortfolioSolver(problem).solve()
            assert raced.stats.proven_optimal, (device.name, name)
            assert raced.assignment == exact.assignment, (device.name, name)
            assert raced.objective == exact.objective, (device.name, name)
            assert raced.method == "exact"
            assert raced.bound_shared

            # Clause 2/3: the pure-heuristic mapper against the proven
            # optimum — exact-match on small machines, differentially
            # bounded on the big ones.
            heuristic = PortfolioSolver(problem, include_exact=False).solve()
            problem.validate(heuristic.assignment)
            assert heuristic.method == "heuristic"
            if device.num_qubits <= EXACT_MATCH_MAX_QUBITS:
                assert heuristic.objective == pytest.approx(
                    exact.objective, abs=1e-9
                ), (device.name, name)
            else:
                assert (
                    heuristic.objective
                    >= MIN_HEURISTIC_RATIO * exact.objective - 1e-12
                ), (
                    device.name,
                    name,
                    heuristic.objective / exact.objective,
                )
            checked += 1
        assert checked >= 5, f"suite barely exercised {device.name}"


class TestMappingSurface:
    """The ``mapper`` knob at the smt_mapping level."""

    def test_unknown_mapper_rejected(self):
        device = example_8q_device()
        circuit, _ = toffoli_benchmark()
        with pytest.raises(ValueError, match="unknown mapper"):
            smt_mapping(
                circuit, device, compute_reliability(device), mapper="z3"
            )

    def test_portfolio_mapping_matches_exact_mapping(self):
        device = example_8q_device()
        reliability = compute_reliability(device)
        circuit = decompose_to_basis(toffoli_benchmark()[0])
        exact = smt_mapping(circuit, device, reliability, mapper="exact")
        raced = smt_mapping(circuit, device, reliability, mapper="portfolio")
        assert raced.placement == exact.placement
        assert raced.method == "exact"
        assert raced.bound_shared and not exact.bound_shared
        names = [run[0] for run in raced.solver_runs]
        assert names[0] == "greedy" and names[-1] == "exact"
        objectives = [event[1] for event in raced.bound_trajectory]
        assert objectives == sorted(objectives)

    def test_heuristic_mapping_is_anytime_not_degraded(self):
        device = example_8q_device()
        reliability = compute_reliability(device)
        circuit = decompose_to_basis(toffoli_benchmark()[0])
        mapping = smt_mapping(circuit, device, reliability, mapper="heuristic")
        assert mapping.method == "heuristic"
        assert not mapping.degraded
        assert "exact" not in {run[0] for run in mapping.solver_runs}


class TestScaleSmoke:
    """BV12-class instances where exact alone hits the wall (paper 6.5)."""

    def _bv12_problem(self, device):
        circuit, _ = bernstein_vazirani(12)
        return mapping_problem(
            decompose_to_basis(circuit), device, compute_reliability(device)
        )

    def test_portfolio_beats_budget_cut_exact_on_72q(self):
        problem = self._bv12_problem(google_bristlecone_72())
        started = time.monotonic()
        raced = PortfolioSolver(problem, time_limit_s=8.0).solve()
        raced_wall = time.monotonic() - started
        started = time.monotonic()
        exact = MaxMinSolver(problem, time_limit_s=8.0).solve()
        exact_wall = time.monotonic() - started
        # Both respect the budget, but exact alone cannot finish the
        # instance — and its budget-cut incumbent scores below the
        # portfolio's anytime answer.
        assert raced_wall < 10.0 and exact_wall < 10.0
        assert not exact.stats.proven_optimal
        problem.validate(raced.assignment)
        assert raced.method == "heuristic"
        assert not raced.degraded
        assert raced.objective >= exact.objective - 1e-12

    @pytest.mark.parametrize("rows,cols", [(5, 10), (10, 10)])
    def test_portfolio_feasible_on_grids(self, rows, cols):
        problem = self._bv12_problem(synthetic_grid(rows, cols))
        started = time.monotonic()
        solution = PortfolioSolver(problem, time_limit_s=3.0).solve()
        assert time.monotonic() - started < 10.0
        problem.validate(solution.assignment)
        assert solution.objective > 0
        assert solution.trajectory, "the race must record its bounds"

    def test_end_to_end_72q_portfolio_compile(self):
        # The acceptance scenario: BV and Toffoli through the full
        # pipeline on the 72-qubit grid with --mapper=portfolio, mapping
        # capped under 10 s.
        device = google_bristlecone_72()
        compiler = TriQCompiler(device, mapper="portfolio", time_limit_s=8.0)
        for circuit, _ in [bernstein_vazirani(12), toffoli_benchmark()]:
            started = time.monotonic()
            program = compiler.compile(circuit)
            wall = time.monotonic() - started
            mapping = program.initial_mapping
            assert mapping.solver_time_s < 10.0, circuit.name
            assert len(program.circuit) > 0
            assert mapping.method in ("exact", "heuristic")
            assert not mapping.degraded
            assert wall < 60.0, (circuit.name, wall)


class TestMapperDivergenceContract:
    """MAP002: heuristic-vs-exact divergence as a structured diagnostic."""

    DEVICE = ibmq5_tenerife()

    def _mapping(self, runs):
        return InitialMapping(
            placement=(0, 1),
            num_hardware_qubits=5,
            objective=0.9,
            solver_runs=tuple(runs),
        )

    def test_registered_error_code(self):
        assert ERROR_CODES["MAP002"] is MapperDivergenceError
        assert issubclass(MapperDivergenceError, ContractError)
        error = MapperDivergenceError("boom", device="d")
        assert error.code == "MAP002"
        assert "TESTING.md" in error.hint

    def test_unsound_heuristic_raises(self):
        # A heuristic claiming to beat the proven optimum means the
        # solvers score assignments differently — always an error.
        mapping = self._mapping(
            [
                ("annealing", 0.95, 10, 0.01, True),
                ("exact", 0.9, 100, 0.02, True),
            ]
        )
        with pytest.raises(MapperDivergenceError, match="exceeds"):
            check_mapper_divergence(mapping, self.DEVICE)

    def test_quality_breach_raises(self):
        mapping = self._mapping(
            [
                ("greedy", 0.5, 0, 0.0, True),
                ("exact", 0.9, 100, 0.02, True),
            ]
        )
        with pytest.raises(MapperDivergenceError, match="fell below"):
            check_mapper_divergence(mapping, self.DEVICE)

    def test_truncated_heuristic_exempt_from_quality_clause(self):
        # A deadline-cut annealing run may legitimately score low; only
        # finished heuristics are held to the differential bound.
        mapping = self._mapping(
            [
                ("annealing", 0.5, 10, 0.01, False),
                ("exact", 0.9, 100, 0.02, True),
            ]
        )
        check_mapper_divergence(mapping, self.DEVICE)

    def test_soundness_clause_applies_even_when_truncated(self):
        mapping = self._mapping(
            [
                ("annealing", 0.95, 10, 0.01, False),
                ("exact", 0.9, 100, 0.02, True),
            ]
        )
        with pytest.raises(MapperDivergenceError, match="exceeds"):
            check_mapper_divergence(mapping, self.DEVICE)

    def test_skipped_without_exact_or_heuristic_runs(self):
        # Unfinished exact (no proven optimum), exact-only (nothing to
        # compare), and default mappings (no runs at all) are all out
        # of scope for the check.
        check_mapper_divergence(
            self._mapping(
                [
                    ("greedy", 0.1, 0, 0.0, True),
                    ("exact", 0.9, 100, 0.02, False),
                ]
            ),
            self.DEVICE,
        )
        check_mapper_divergence(
            self._mapping([("exact", 0.9, 100, 0.02, True)]), self.DEVICE
        )
        check_mapper_divergence(
            InitialMapping((0, 1), num_hardware_qubits=5), self.DEVICE
        )

    def test_strict_portfolio_compile_is_clean(self):
        # End-to-end: the real portfolio on a real device passes the
        # contract gate — and the fuzz classifier (which drives the
        # same strict pipeline) agrees.
        device = self.DEVICE
        compiler = TriQCompiler(
            device, mapper="portfolio", contracts="strict"
        )
        circuit = decompose_to_basis(toffoli_benchmark()[0])
        program = compiler.compile(circuit)
        assert program.initial_mapping.method == "exact"
        assert (
            classify(
                toffoli_benchmark()[0],
                device,
                OptimizationLevel.OPT_1QCN,
                mapper="portfolio",
            )
            is None
        )

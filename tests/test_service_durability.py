"""Chaos suite: kill the real daemon mid-job, restart it, audit the
recovery.

The contract under proof (the ISSUE's tentpole): every job the daemon
*acknowledged* is, after an uncatchable death and a restart, either
completed exactly once or visible as interrupted/failed — never lost,
never double-executed.  Three killers are used:

* ``serve-kill:N`` — deterministic: ``os._exit`` fires right after the
  Nth WAL fsync, so the death lands on a chosen record boundary;
* ``wal-torn-tail`` — the final append writes half its bytes and dies,
  leaving real crash debris for replay to survive;
* a plain ``SIGKILL`` at an arbitrary moment — nondeterministic, the
  recovery must be correct wherever it lands.

Every life of the daemon is a real subprocess running ``repro serve``
exactly as users do.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.faults import INJECTED_CRASH_EXIT_CODE
from repro.obs import parse_prometheus

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


class Daemon:
    """One life of the service as a real subprocess."""

    def __init__(self, tmp_path, fault_inject=None, lifetag="life"):
        self.port_file = tmp_path / f"port-{lifetag}"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env.pop("REPRO_FAULT_INJECT", None)
        if fault_inject:
            env["REPRO_FAULT_INJECT"] = fault_inject
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", str(self.port_file),
                "--cache-dir", str(tmp_path / "cache"),
                "--wal-path", str(tmp_path / "wal.jsonl"),
                "--workers", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        self.port = None

    def wait_listening(self, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while not self.port_file.exists():
            assert self.proc.poll() is None, self.stderr()
            assert time.monotonic() < deadline, "daemon never listened"
            time.sleep(0.05)
        self.port = int(self.port_file.read_text().strip())
        return self

    def request(self, method, path, body=None, timeout=120):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            data = json.dumps(body) if isinstance(body, dict) else body
            conn.request(method, path, body=data)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        return response.status, (json.loads(text) if text else {})

    def metric(self, name, **labels):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=30
        )
        try:
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode("utf-8")
        finally:
            conn.close()
        wanted = json.dumps(
            {k: str(v) for k, v in labels.items()}, sort_keys=True
        )
        return parse_prometheus(text).get(name, {}).get(wanted, 0.0)

    def wait_job(self, job_id, timeout_s=120.0):
        deadline = time.monotonic() + timeout_s
        while True:
            status, payload = self.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200, f"{job_id} lost after recovery"
            if payload["job"]["status"] in ("done", "failed"):
                return payload
            assert time.monotonic() < deadline, f"{job_id} never settled"
            time.sleep(0.05)

    def wait_death(self, timeout_s=120.0):
        return self.proc.wait(timeout=timeout_s)

    def stderr(self):
        try:
            return self.proc.stderr.read().decode()
        except Exception:  # noqa: BLE001
            return "<stderr unavailable>"

    def terminate_clean(self):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=60)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


BODY_A = {"benchmark": "HS2", "device": "tenerife"}
BODY_B = {"benchmark": "BV6", "device": "melbourne", "wait": False}


class TestServeKillRecovery:
    def test_job_interrupted_mid_execution_reexecutes_exactly_once(
        self, tmp_path
    ):
        """Deterministic kill on the WAL record that marks job B
        running: B dies mid-execution, A is already terminal.

        Fsync ledger for life 1: A submitted (1), A running (2),
        A done (3), B submitted (4, the 202 ack is sent), B running
        (5) -> death.
        """
        life1 = Daemon(tmp_path, fault_inject="serve-kill:5", lifetag="1")
        try:
            life1.wait_listening()
            status, payload = life1.request("POST", "/v1/compile", BODY_A)
            assert status == 200
            assert payload["job"]["status"] == "done"
            job_a = payload["job"]["id"]
            try:
                status, payload = life1.request(
                    "POST", "/v1/compile", BODY_B
                )
                assert status == 202
                job_b = payload["job"]["id"]
            except (ConnectionError, http.client.HTTPException, OSError):
                # The dispatcher's "running" fsync (the kill point) can
                # fire before the buffered 202 flushes to the socket.
                # The submit record is durable either way; the id is
                # recovered from life 2's job table below.
                job_b = None
            assert life1.wait_death() == INJECTED_CRASH_EXIT_CODE
        finally:
            life1.cleanup()

        life2 = Daemon(tmp_path, lifetag="2")
        try:
            life2.wait_listening()
            if job_b is None:
                _, listing = life2.request("GET", "/v1/jobs")
                (job_b,) = [
                    j["id"] for j in listing["jobs"] if j["id"] != job_a
                ]
            # A: terminal before the crash — visible, not re-executed.
            status, payload = life2.request("GET", f"/v1/jobs/{job_a}")
            assert status == 200
            assert payload["job"]["status"] == "done"
            assert payload["job"]["recovered"] is True
            # B: interrupted mid-execution — re-executed exactly once.
            payload = life2.wait_job(job_b)
            assert payload["job"]["status"] == "done"
            assert payload["job"]["interrupted"] is True
            assert payload["result"]["benchmark"] == "BV6"
            assert life2.metric(
                "repro_service_recovered_jobs_total",
                disposition="terminal",
            ) == 1.0
            assert life2.metric(
                "repro_service_recovered_jobs_total",
                disposition="reexecuted",
            ) == 1.0
            # Exactly once: life 2 ran exactly one job (B); A's compile
            # never re-entered the executor.
            assert life2.metric(
                "repro_service_jobs_completed_total",
                kind="compile", tenant="default", status="done",
            ) == 1.0
            assert life2.terminate_clean() == 0
        finally:
            life2.cleanup()

    def test_durable_but_unacked_job_is_recovered_not_lost(self, tmp_path):
        """Death on the submit fsync itself: the record hit disk but
        the 202 was never written.  The client saw a dropped
        connection; the journal-before-ack discipline means the
        restarted daemon runs the job anyway — durable-side work is
        recovered, and resubmitting the same request would coalesce
        rather than double-execute."""
        life1 = Daemon(tmp_path, fault_inject="serve-kill:4", lifetag="1")
        try:
            life1.wait_listening()
            status, _ = life1.request("POST", "/v1/compile", BODY_A)
            assert status == 200  # fsyncs 1..3
            try:
                life1.request("POST", "/v1/compile", BODY_B)
                raise AssertionError("daemon should have died mid-submit")
            except (ConnectionError, http.client.HTTPException, OSError):
                pass  # fsync 4 fired the kill before the ack
            assert life1.wait_death() == INJECTED_CRASH_EXIT_CODE
        finally:
            life1.cleanup()

        life2 = Daemon(tmp_path, lifetag="2")
        try:
            life2.wait_listening()
            _, listing = life2.request("GET", "/v1/jobs")
            by_id = sorted(listing["jobs"], key=lambda j: j["id"])
            assert len(by_id) == 2  # A (terminal) and B (recovered)
            job_b = by_id[-1]["id"]
            payload = life2.wait_job(job_b)
            assert payload["job"]["status"] == "done"
            assert payload["job"]["recovered"] is True
            assert payload["result"]["benchmark"] == "BV6"
            assert life2.terminate_clean() == 0
        finally:
            life2.cleanup()


class TestTornTailRecovery:
    def test_half_written_record_is_skipped_with_a_warning(self, tmp_path):
        """``wal-torn-tail``: the very first append writes half its
        bytes and dies.  The unacknowledged job is lost (it was never
        202'd), the restarted daemon warns, survives, and serves."""
        life1 = Daemon(tmp_path, fault_inject="wal-torn-tail", lifetag="1")
        try:
            life1.wait_listening()
            try:
                life1.request("POST", "/v1/compile", BODY_B, timeout=30)
            except (ConnectionError, http.client.HTTPException, OSError):
                pass  # the daemon died before answering — expected
            assert life1.wait_death() == INJECTED_CRASH_EXIT_CODE
            wal = (tmp_path / "wal.jsonl").read_bytes()
            assert wal and not wal.endswith(b"\n")  # genuinely torn
        finally:
            life1.cleanup()

        life2 = Daemon(tmp_path, lifetag="2")
        try:
            life2.wait_listening()
            status, payload = life2.request("GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
            _, listing = life2.request("GET", "/v1/jobs")
            assert listing["jobs"] == []  # never acked -> legitimately lost
            # And the daemon said why, out loud.
            assert life2.terminate_clean() == 0
            assert "truncated final line" in life2.stderr()
        finally:
            life2.cleanup()


class TestSigkillRecovery:
    def test_sigkill_at_an_arbitrary_moment_never_loses_or_doubles(
        self, tmp_path
    ):
        """The nondeterministic killer: SIGKILL lands wherever it lands
        (queued, running, or done).  Whatever the interleaving, the
        acknowledged job must end up terminal exactly once."""
        life1 = Daemon(tmp_path, lifetag="1")
        try:
            life1.wait_listening()
            status, payload = life1.request("POST", "/v1/compile", BODY_B)
            assert status == 202
            job_b = payload["job"]["id"]
            life1.proc.kill()  # SIGKILL, uncatchable, right now
            assert life1.wait_death() == -signal.SIGKILL
        finally:
            life1.cleanup()

        life2 = Daemon(tmp_path, lifetag="2")
        try:
            life2.wait_listening()
            payload = life2.wait_job(job_b)
            assert payload["job"]["status"] in ("done", "failed")
            if payload["job"]["status"] == "done":
                assert payload["result"]["benchmark"] == "BV6"
            # Exactly once: at most one execution happened in life 2
            # (zero if the job finished before the SIGKILL landed).
            assert life2.metric(
                "repro_service_jobs_completed_total",
                kind="compile", tenant="default", status="done",
            ) <= 1.0
            assert life2.terminate_clean() == 0
        finally:
            life2.cleanup()

"""WAL unit tests plus in-process crash-recovery integration tests.

The unit half exercises :class:`repro.service.wal.JobWAL` directly —
append/replay round trips, torn-tail tolerance, duplicate suppression,
atomic compaction.  The integration half hand-crafts WAL files (the
same records a crashed daemon would have left) and boots a real
in-process daemon on top of them, asserting the recovery dispositions
the ISSUE demands: queued jobs re-enqueue, interrupted jobs re-execute
exactly once (warm cache -> zero recompiles), duplicate idempotency
keys re-fold onto one primary, and WAL-off behaves exactly like the
pre-WAL daemon.
"""

from __future__ import annotations

import json
import time
import warnings

import pytest

from repro.cache import activate_cache
from repro.service.wal import WAL_VERSION, JobWAL

from tests.test_service import ServiceHarness

BODY = {"benchmark": "HS2", "device": "tenerife"}


def make_job(job_id="job-000001", coalesce_key=None, deadline_s=None,
             submitted_at=None, params=None):
    """A WAL ``submitted`` job dict shaped like Job.wal_entry()."""
    return {
        "id": job_id,
        "kind": "compile",
        "tenant": "default",
        "params": dict(params if params is not None else BODY),
        "coalesce_key": coalesce_key,
        "deadline_s": deadline_s,
        "submitted_at": (
            time.time() if submitted_at is None else submitted_at
        ),
        "coalesced_with": None,
    }


def wait_for_job(harness, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while True:
        status, payload = harness.request("GET", f"/v1/jobs/{job_id}")
        assert status == 200, f"{job_id} vanished: {payload}"
        if payload["job"]["status"] in ("done", "failed"):
            return payload
        assert time.monotonic() < deadline, f"{job_id} never finished"
        time.sleep(0.05)


class TestJobWALUnit:
    def test_round_trip_lifecycle(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.submitted(make_job("job-000002"))
        wal.running("job-000001")
        wal.finished("job-000001", "done")
        wal.running("job-000002")
        wal.close()
        jobs = {j.id: j for j in JobWAL(wal.path).replay()}
        assert jobs["job-000001"].status == "done"
        assert jobs["job-000001"].terminal
        assert jobs["job-000002"].status == "running"
        assert jobs["job-000002"].interrupted

    def test_replay_preserves_submission_order(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        for n in (3, 1, 2):
            wal.submitted(make_job(f"job-00000{n}"))
        wal.close()
        assert [j.id for j in JobWAL(wal.path).replay()] == [
            "job-000003", "job-000001", "job-000002"
        ]

    def test_failed_carries_error_dict(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job())
        wal.finished(
            "job-000001", "failed", {"type": "ValueError", "message": "no"}
        )
        wal.close()
        (job,) = JobWAL(wal.path).replay()
        assert job.status == "failed"
        assert job.error == {"type": "ValueError", "message": "no"}

    def test_missing_file_replays_empty(self, tmp_path):
        assert JobWAL(tmp_path / "absent.jsonl").replay() == []

    def test_torn_final_line_warns_and_keeps_prefix(self, tmp_path):
        """A kill can tear the last append anywhere; replay survives."""
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.running("job-000001")
        wal.close()
        whole = wal.path.read_bytes()
        torn_line = json.dumps(
            {"v": WAL_VERSION, "event": "done", "id": "job-000001"}
        ).encode()
        wal.path.write_bytes(whole + torn_line[: len(torn_line) // 2])
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            (job,) = JobWAL(wal.path).replay()
        # The torn "done" is lost; the durable prefix stands.
        assert job.status == "running" and job.interrupted

    def test_corrupt_middle_line_warns_and_skips(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.close()
        lines = wal.path.read_bytes()
        wal.path.write_bytes(
            b'{"v": 1, "event": "subm\xff\xfe GARBAGE\n'
            + lines
            + json.dumps(
                {"v": WAL_VERSION, "event": "done", "id": "job-000001"}
            ).encode() + b"\n"
        )
        with pytest.warns(RuntimeWarning, match="corrupt line 1"):
            (job,) = JobWAL(wal.path).replay()
        assert job.status == "done"

    def test_duplicate_submitted_records_ignored(self, tmp_path):
        """Replay-of-a-replay cannot double-register a job."""
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001", params={"benchmark": "HS2",
                                                    "device": "tenerife"}))
        wal.submitted(make_job("job-000001", params={"benchmark": "BV6",
                                                    "device": "melbourne"}))
        wal.close()
        (job,) = JobWAL(wal.path).replay()
        assert job.params == BODY  # the first write wins

    def test_terminal_state_not_downgraded(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.finished("job-000001", "done")
        wal.running("job-000001")  # stale transition after terminal
        wal.close()
        (job,) = JobWAL(wal.path).replay()
        assert job.status == "done"

    def test_unknown_records_and_versions_skipped(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.close()
        with open(wal.path, "ab") as handle:
            handle.write(b'{"v": 99, "event": "submitted", "job": {}}\n')
            handle.write(b'{"v": 1, "event": "exploded", "id": "x"}\n')
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # must not even warn
            (job,) = JobWAL(wal.path).replay()
        assert job.id == "job-000001"

    def test_rewrite_compacts_atomically(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.finished("job-000001", "done")
        wal.submitted(make_job("job-000002"))
        wal.running("job-000002")
        pending = [j for j in wal.replay() if not j.terminal]
        wal.rewrite(pending)
        assert not wal.path.with_suffix(".compact.tmp").exists()
        lines = wal.path.read_text().strip().splitlines()
        assert len(lines) == 1  # terminal job dropped
        (job,) = JobWAL(wal.path).replay()
        assert job.id == "job-000002"
        # The re-journaled record is a fresh "submitted": the previous
        # life's "running" transition is gone, the raw job dict kept.
        assert job.status == "queued"
        assert job.params == BODY

    def test_fsync_counter_increments_per_append(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job())
        wal.running("job-000001")
        wal.finished("job-000001", "done")
        assert wal.fsyncs == 3
        wal.close()


class TestServiceRecovery:
    """Boot a daemon over a hand-crafted (or inherited) WAL."""

    def _harness(self, tmp_path, **kwargs):
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("wal_path", tmp_path / "wal.jsonl")
        return ServiceHarness(**kwargs)

    def test_queued_job_is_reenqueued_and_completes(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000007"))
        wal.close()
        harness = self._harness(tmp_path)
        try:
            payload = wait_for_job(harness, "job-000007")
            assert payload["job"]["status"] == "done"
            assert payload["job"]["recovered"] is True
            assert payload["job"]["interrupted"] is False
            assert payload["result"]["benchmark"] == "HS2"
            assert harness.metric(
                "repro_service_recovered_jobs_total",
                disposition="requeued",
            ) == 1.0
            # New submissions in the second life must not collide with
            # replayed ids: the sequence is reseeded past job-000007.
            _, fresh = harness.request(
                "POST", "/v1/compile",
                {"benchmark": "BV6", "device": "melbourne", "wait": False},
            )
            assert fresh["job"]["id"] == "job-000008"
        finally:
            harness.stop()
            activate_cache(None)

    def test_interrupted_job_reexecutes_exactly_once(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.running("job-000001")  # daemon died mid-execution
        wal.close()
        harness = self._harness(tmp_path)
        try:
            payload = wait_for_job(harness, "job-000001")
            assert payload["job"]["status"] == "done"
            assert payload["job"]["interrupted"] is True
            assert harness.metric(
                "repro_service_recovered_jobs_total",
                disposition="reexecuted",
            ) == 1.0
            # Exactly once: one completion, no surviving duplicates.
            assert harness.metric(
                "repro_service_jobs_completed_total",
                kind="compile", tenant="default", status="done",
            ) == 1.0
        finally:
            harness.stop()
            activate_cache(None)

    def test_warm_cache_replay_recompiles_nothing(self, tmp_path):
        """Idempotent replay: the artifact reached the cache before the
        crash, so the re-executed job short-circuits to a cache hit."""
        life1 = self._harness(tmp_path)
        try:
            status, first = life1.request("POST", "/v1/compile", BODY)
            assert status == 200 and first["result"]["cache_hit"] is False
        finally:
            life1.stop()
            activate_cache(None)
        # The daemon "dies" mid-re-execution of an identical job.
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000009"))
        wal.running("job-000009")
        wal.close()
        life2 = self._harness(tmp_path)
        try:
            payload = wait_for_job(life2, "job-000009")
            assert payload["job"]["status"] == "done"
            assert payload["result"]["cache_hit"] is True
            assert (
                payload["result"]["cache_key"]
                == first["result"]["cache_key"]
            )
            # Zero recompiles, proven by the cache-event counters: the
            # replayed compile resolved from the store, never missed.
            assert life2.metric(
                "repro_service_cache_events_total", event="miss"
            ) == 0.0
            hits = life2.metric(
                "repro_service_cache_events_total", event="disk_hit"
            ) + life2.metric(
                "repro_service_cache_events_total", event="memory_hit"
            )
            assert hits >= 1.0
        finally:
            life2.stop()
            activate_cache(None)

    def test_duplicate_keys_across_restart_fold_onto_one_primary(
        self, tmp_path
    ):
        """S4: duplicate idempotency keys replayed after a crash are
        deduplicated through the live coalescer, not re-run N times."""
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001", coalesce_key="k-hs2"))
        # The duplicate had folded onto job-000001 in the previous
        # life; its stored coalesced_with must be recomputed, not
        # trusted, because that primary no longer exists.
        duplicate = make_job("job-000002", coalesce_key="k-hs2")
        duplicate["coalesced_with"] = "job-000001"
        wal.submitted(duplicate)
        wal.submitted(make_job("job-000003", coalesce_key="k-hs2"))
        wal.close()
        harness = self._harness(tmp_path)
        try:
            for job_id in ("job-000001", "job-000002", "job-000003"):
                payload = wait_for_job(harness, job_id)
                assert payload["job"]["status"] == "done"
            assert harness.metric(
                "repro_service_cache_events_total", event="coalesced"
            ) == 2.0
            # One primary ran; two duplicates inherited its result.
            assert harness.metric(
                "repro_service_jobs_completed_total",
                kind="compile", tenant="default", status="done",
            ) == 1.0
        finally:
            harness.stop()
            activate_cache(None)

    def test_terminal_jobs_stay_visible_without_rerunning(self, tmp_path):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000004"))
        wal.finished("job-000004", "failed",
                     {"type": "ValueError", "message": "bad day"})
        wal.close()
        harness = self._harness(tmp_path)
        try:
            status, payload = harness.request(
                "GET", "/v1/jobs/job-000004"
            )
            assert status == 200
            assert payload["job"]["status"] == "failed"
            assert payload["job"]["recovered"] is True
            assert payload["error"]["type"] == "ValueError"
            assert harness.metric(
                "repro_service_recovered_jobs_total",
                disposition="terminal",
            ) == 1.0
            # Nothing executed on this boot.
            assert harness.metric(
                "repro_service_jobs_completed_total",
                kind="compile", tenant="default", status="failed",
            ) == 0.0
        finally:
            harness.stop()
            activate_cache(None)

    def test_expired_deadline_fails_at_recovery_not_reexecuted(
        self, tmp_path
    ):
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job(
            "job-000005", deadline_s=0.5,
            submitted_at=time.time() - 60.0,  # long dead
        ))
        wal.running("job-000005")
        wal.close()
        harness = self._harness(tmp_path)
        try:
            status, payload = harness.request(
                "GET", "/v1/jobs/job-000005"
            )
            assert status == 200
            assert payload["job"]["status"] == "failed"
            assert payload["error"]["type"] == "DeadlineExceeded"
            assert payload["error"]["stage"] == "recovery"
            assert harness.metric(
                "repro_service_recovered_jobs_total",
                disposition="deadline_expired",
            ) == 1.0
        finally:
            harness.stop()
            activate_cache(None)

    def test_boot_compacts_the_wal(self, tmp_path):
        """Terminal records are dropped at boot; replay is idempotent."""
        wal = JobWAL(tmp_path / "wal.jsonl")
        wal.submitted(make_job("job-000001"))
        wal.finished("job-000001", "done")
        wal.close()
        harness = self._harness(tmp_path)
        try:
            time.sleep(0.1)
            assert (tmp_path / "wal.jsonl").read_bytes().strip() == b""
        finally:
            harness.stop()
            activate_cache(None)

    def test_wal_off_creates_no_file_and_matches_wal_on(self, tmp_path):
        """--no-wal is byte-identical to the pre-WAL daemon: no journal
        on disk, identical compile payloads."""
        on = ServiceHarness(
            cache_dir=tmp_path / "cache-on",
            wal_path=tmp_path / "wal-on.jsonl",
        )
        try:
            _, with_wal = on.request("POST", "/v1/compile", BODY)
        finally:
            on.stop()
            activate_cache(None)
        off = ServiceHarness(
            cache_dir=tmp_path / "cache-off", wal_enabled=False
        )
        try:
            _, healthz = off.request("GET", "/healthz")
            assert healthz["wal_enabled"] is False
            _, without_wal = off.request("POST", "/v1/compile", BODY)
        finally:
            off.stop()
            activate_cache(None)
        assert not list((tmp_path / "cache-off").rglob("*.jsonl"))
        volatile = {"compile_time_s"}
        strip = lambda p: {  # noqa: E731
            k: v for k, v in p["result"].items() if k not in volatile
        }
        assert strip(with_wal) == strip(without_wal)
        assert (tmp_path / "wal-on.jsonl").exists()

"""Property tests for the batched statevector engine (Hypothesis).

Three families of invariants over randomly drawn states, gates, and
circuits:

* **Batch independence / linearity** — the batch dimension is inert:
  row ``i`` of ``apply_unitary_batch`` equals the scalar
  ``apply_unitary`` on row ``i`` (bit for bit, the engine's core
  promise), and concatenating two batches equals concatenating their
  results.
* **Permutation invariance** — reordering the fault sets of
  ``simulate_statevector_batch`` just reorders the output rows.
* **Density-matrix agreement** — on 2-qubit circuits the clean batched
  probabilities match :mod:`repro.sim.density`'s exact pure-state
  density evolution.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.contracts.fuzz import random_circuit
from repro.ir import gate_matrix
from repro.ir.instruction import Instruction
from repro.sim.batch import (
    apply_unitary_batch,
    probabilities_from_states,
    simulate_statevector_batch,
    zero_states,
)
from repro.sim.density import apply_unitary_to_density, zero_density
from repro.sim.statevector import apply_unitary

#: Gate pool with representative arities (params where required).
_GATES = [
    ("x", 1, ()),
    ("h", 1, ()),
    ("t", 1, ()),
    ("rz", 1, (0.7,)),
    ("cx", 2, ()),
    ("cz", 2, ()),
]


def _random_states(seed: int, batch: int, num_qubits: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    states = rng.normal(size=(batch, 2**num_qubits)) + 1j * rng.normal(
        size=(batch, 2**num_qubits)
    )
    return states / np.linalg.norm(states, axis=1, keepdims=True)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    batch=st.integers(1, 7),
    num_qubits=st.integers(1, 4),
    gate=st.sampled_from(_GATES),
    data=st.data(),
)
def test_batch_rows_match_scalar_kernel(seed, batch, num_qubits, gate, data):
    name, arity, params = gate
    if arity > num_qubits:
        num_qubits = arity
    qubits = data.draw(
        st.permutations(range(num_qubits)).map(lambda p: tuple(p[:arity]))
    )
    states = _random_states(seed, batch, num_qubits)
    matrix = gate_matrix(name, params)
    batched = apply_unitary_batch(states, matrix, qubits, num_qubits)
    for i in range(batch):
        scalar = apply_unitary(states[i], matrix, qubits, num_qubits)
        assert np.array_equal(batched[i], scalar)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    split=st.integers(1, 5),
    num_qubits=st.integers(2, 4),
)
def test_batch_concatenation_is_linear(seed, split, num_qubits):
    """Concatenating batches then applying == applying then
    concatenating: the kernel acts on each row independently."""
    states = _random_states(seed, split + 3, num_qubits)
    matrix = gate_matrix("cx")
    qubits = (0, 1)
    whole = apply_unitary_batch(states, matrix, qubits, num_qubits)
    parts = np.concatenate(
        [
            apply_unitary_batch(states[:split], matrix, qubits, num_qubits),
            apply_unitary_batch(states[split:], matrix, qubits, num_qubits),
        ]
    )
    assert np.array_equal(whole, parts)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_batch_order_permutation_invariance(seed):
    """Permuting the fault sets permutes the rows, nothing else."""
    rng = random.Random(seed)
    circuit = random_circuit(rng, 3, 8, name="perm")
    fault_sets = [
        None,
        [(0, Instruction("x", (0,)))],
        [(1, Instruction("z", (1,)))],
        [(0, Instruction("x", (0,))), (2, Instruction("y", (2,)))],
    ]
    order = list(range(len(fault_sets)))
    rng.shuffle(order)
    direct = simulate_statevector_batch(circuit, fault_sets)
    permuted = simulate_statevector_batch(
        circuit, [fault_sets[i] for i in order]
    )
    for row, original in enumerate(order):
        assert np.array_equal(permuted[row], direct[original])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_agrees_with_density_on_two_qubit_circuits(seed):
    """Clean batched evolution == exact density-matrix evolution."""
    rng = random.Random(seed)
    circuit = random_circuit(rng, 2, 6, name="dens")
    states = simulate_statevector_batch(circuit, [None, None])
    rho = zero_density(2)
    for inst in circuit:
        if inst.is_unitary:
            rho = apply_unitary_to_density(
                rho, gate_matrix(inst.name, inst.params), inst.qubits, 2
            )
    probabilities = probabilities_from_states(states)
    diagonal = np.real(np.diag(rho))
    for row in probabilities:
        np.testing.assert_allclose(row, diagonal, atol=1e-10)


def test_zero_states_are_ground_states():
    states = zero_states(3, 2)
    assert states.shape == (3, 4)
    assert np.array_equal(states[:, 0], np.ones(3))
    assert not states[:, 1:].any()


class TestBlasSelfCheck:
    """The wide-GEMM width-invariance is verified at runtime, not assumed.

    Bit-identity of the batched kernel rests on an empirical BLAS
    property (widening a matmul leaves existing columns unchanged).
    The module checks it once per process on this interpreter's BLAS
    and falls back to the per-row scalar path when it does not hold, so
    the reproducibility contract survives any BLAS build.
    """

    def test_self_check_runs_and_caches(self, monkeypatch):
        import repro.sim.batch as batch

        monkeypatch.setattr(batch, "_WIDE_KERNEL_VERIFIED", None)
        first = batch._wide_kernel_bit_identical()
        assert isinstance(first, bool)
        assert batch._WIDE_KERNEL_VERIFIED is first
        assert batch._wide_kernel_bit_identical() is first

    def test_failed_self_check_falls_back_to_scalar(self, monkeypatch):
        import repro.sim.batch as batch

        monkeypatch.setattr(batch, "_WIDE_KERNEL_VERIFIED", False)
        states = _random_states(19, 3, 4)
        matrix = gate_matrix("u3", (0.2, 0.4, 0.6))
        out = batch.apply_unitary_batch(states.copy(), matrix, (1,), 4)
        for i in range(states.shape[0]):
            assert np.array_equal(
                out[i], apply_unitary(states[i], matrix, (1,), 4)
            )

"""Tests for swap routing and scheduling."""

import pytest

from tests.helpers import make_device
from repro.compiler.mapping import InitialMapping, default_mapping
from repro.compiler.reliability import compute_reliability
from repro.compiler.routing import route_circuit
from repro.devices import Topology
from repro.ir import Circuit, decompose_to_basis
from repro.sim import ideal_distribution


def route(circuit, device, mapping=None):
    decomposed = decompose_to_basis(circuit)
    if mapping is None:
        mapping = default_mapping(decomposed, device)
    reliability = compute_reliability(device)
    return route_circuit(decomposed, device, mapping, reliability)


class TestAdjacency:
    def test_all_2q_gates_on_coupled_pairs(self):
        device = make_device(Topology.line(4))
        circuit = Circuit(4).cx(0, 3).cx(1, 3).cx(0, 2).measure_all()
        routed = route(circuit, device)
        for inst in routed.circuit:
            if inst.is_unitary and inst.num_qubits == 2:
                assert device.topology.are_coupled(*inst.qubits), str(inst)

    def test_adjacent_gate_needs_no_swaps(self):
        device = make_device(Topology.line(4))
        routed = route(Circuit(2).cx(0, 1), device)
        assert routed.num_swaps == 0

    def test_distant_gate_inserts_swaps(self):
        device = make_device(Topology.line(4))
        routed = route(Circuit(4).cx(0, 3), device)
        assert routed.num_swaps == 2

    def test_fully_connected_never_swaps(self, full5_umdti):
        circuit = Circuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                circuit.cx(a, b)
        routed = route(circuit, full5_umdti)
        assert routed.num_swaps == 0


class TestSemantics:
    def test_cbits_stay_in_program_order(self):
        device = make_device(Topology.line(4))
        circuit = Circuit(4).x(3).cx(0, 3).measure_all()
        routed = route(circuit, device)
        cbits = sorted(
            inst.cbits[0]
            for inst in routed.circuit
            if inst.is_measurement
        )
        assert cbits == [0, 1, 2, 3]

    def test_distribution_preserved_through_routing(self):
        device = make_device(Topology.line(5))
        circuit = Circuit(5).h(0).cx(0, 4).cx(0, 3).x(2).measure_all()
        routed = route(circuit, device)
        assert ideal_distribution(routed.circuit) == pytest.approx(
            ideal_distribution(circuit)
        )

    def test_distribution_preserved_with_nontrivial_mapping(self):
        device = make_device(Topology.line(5))
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        mapping = InitialMapping((4, 2, 0), num_hardware_qubits=5)
        decomposed = decompose_to_basis(circuit)
        reliability = compute_reliability(device)
        routed = route_circuit(decomposed, device, mapping, reliability)
        assert ideal_distribution(routed.circuit) == pytest.approx(
            ideal_distribution(circuit)
        )

    def test_final_placement_tracks_swaps(self):
        device = make_device(Topology.line(4))
        routed = route(Circuit(4).cx(0, 3), device)
        # Program qubit 0 moved next to 3.
        assert routed.final_placement[0] == 2
        assert routed.final_placement[3] == 3


class TestReliabilityAwareRouting:
    def test_takes_reliable_detour(self):
        # Square with one terrible edge: routing must go the long way.
        topo = Topology(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        device = make_device(topo)
        device.calibration().two_qubit_error[frozenset((0, 3))] = 0.74
        circuit = Circuit(4).cx(0, 3)
        decomposed = decompose_to_basis(circuit)
        reliability = compute_reliability(device)
        routed = route_circuit(
            decomposed,
            device,
            default_mapping(decomposed, device),
            reliability,
        )
        used_edges = {
            frozenset(inst.qubits)
            for inst in routed.circuit
            if inst.is_unitary and inst.num_qubits == 2
        }
        assert frozenset((0, 3)) not in used_edges

    def test_rejects_undcomposed_input(self):
        device = make_device(Topology.line(4))
        circuit = Circuit(3).ccx(0, 1, 2)
        with pytest.raises(ValueError, match="decomposed"):
            route_circuit(
                circuit,
                device,
                default_mapping(circuit, device),
                compute_reliability(device),
            )

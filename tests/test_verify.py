"""Tests for the public compilation verifier."""

import pytest

from repro import compile_circuit, ibmq14_melbourne, umd_trapped_ion
from repro.ir import Circuit
from repro.programs import bernstein_vazirani, qft_benchmark
from repro.verify import (
    CompilationError,
    VerificationReport,
    assert_distributions_close,
    distribution_distance,
    verify_compilation,
)


class TestDistributionDistance:
    def test_identical(self):
        assert distribution_distance({"0": 1.0}, {"0": 1.0}) == 0.0

    def test_disjoint(self):
        assert distribution_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(
            1.0
        )

    def test_partial_overlap(self):
        a = {"00": 0.5, "11": 0.5}
        b = {"00": 0.25, "11": 0.75}
        assert distribution_distance(a, b) == pytest.approx(0.25)

    def test_assert_close_raises_with_detail(self):
        with pytest.raises(CompilationError, match="TV distance"):
            assert_distributions_close({"0": 1.0}, {"1": 1.0})


class TestVerifyCompilation:
    def test_verifies_real_compilations(self):
        circuit, _ = bernstein_vazirani(6)
        program = compile_circuit(circuit, ibmq14_melbourne())
        report = verify_compilation(circuit, program)
        assert report.ok
        assert report.device_name == "IBM Q14 Melbourne"
        assert report.total_variation_distance < 1e-9

    def test_verifies_probabilistic_outputs(self):
        # A circuit with a genuinely random output still verifies: the
        # distributions (not samples) are compared.
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        program = compile_circuit(circuit, umd_trapped_ion())
        assert verify_compilation(circuit, program).ok

    def test_detects_broken_compilation(self):
        circuit, _ = qft_benchmark(4)
        program = compile_circuit(circuit, ibmq14_melbourne())
        # Sabotage: swap the program's circuit for a different one.
        import dataclasses

        wrong = Circuit(program.circuit.num_qubits)
        wrong.x(0)
        for q in range(4):
            wrong.measure(q)
        broken = dataclasses.replace(program, circuit=wrong)
        with pytest.raises(CompilationError):
            verify_compilation(circuit, broken)

    def test_source_without_measurement_rejected(self):
        circuit = Circuit(2).h(0)
        program = compile_circuit(
            Circuit(2).h(0).measure_all(), umd_trapped_ion()
        )
        with pytest.raises(ValueError, match="no measurements"):
            verify_compilation(circuit, program)


class TestVerificationReport:
    def test_ok_thresholds(self):
        ok = VerificationReport("src", "dev", 1e-9, 1e-9)
        bad = VerificationReport("src", "dev", 0.5, 0.5)
        assert ok.ok and not bad.ok

    def test_report_fields_from_real_run(self):
        circuit = Circuit(2).x(0).measure_all()
        program = compile_circuit(circuit, umd_trapped_ion())
        report = verify_compilation(circuit, program)
        assert report.source_name == circuit.name
        assert report.max_pointwise_error <= (
            2 * report.total_variation_distance + 1e-12
        )

    def test_detects_miswired_measurements(self):
        # Program computes the right state but reads the bits out
        # crossed: qubit 0's result lands in cbit 1 and vice versa.
        import dataclasses

        circuit = Circuit(2).x(0).measure_all()  # expected "10"
        program = compile_circuit(circuit, umd_trapped_ion())
        miswired_circuit = Circuit(program.circuit.num_qubits)
        for inst in program.circuit:
            if inst.is_measurement:
                miswired_circuit.append(
                    dataclasses.replace(
                        inst, cbits=(1 - inst.cbits[0],)
                    )
                )
            else:
                miswired_circuit.append(inst)
        miswired = dataclasses.replace(program, circuit=miswired_circuit)
        with pytest.raises(CompilationError, match="TV distance"):
            verify_compilation(circuit, miswired)

"""Tests for the lookahead (SABRE-style) router."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import make_device
from repro.compiler import OptimizationLevel, TriQCompiler
from repro.compiler.lookahead import lookahead_route
from repro.compiler.mapping import default_mapping
from repro.compiler.reliability import compute_reliability
from repro.devices import Topology, ibmq14_melbourne
from repro.ir import Circuit, decompose_to_basis
from repro.programs import bernstein_vazirani, qft_benchmark
from repro.sim import ideal_distribution


def route(circuit, device):
    decomposed = decompose_to_basis(circuit)
    mapping = default_mapping(decomposed, device)
    reliability = compute_reliability(device)
    return lookahead_route(decomposed, device, mapping, reliability)


class TestInvariants:
    def test_all_2q_on_coupled_pairs(self):
        device = make_device(Topology.line(5))
        circuit = Circuit(5).cx(0, 4).cx(1, 3).cx(0, 2).measure_all()
        routed = route(circuit, device)
        for inst in routed.circuit:
            if inst.is_unitary and inst.num_qubits == 2:
                assert device.topology.are_coupled(*inst.qubits)

    def test_semantics_preserved(self):
        device = make_device(Topology.line(5))
        circuit = Circuit(5).h(0).cx(0, 4).cx(1, 3).x(2).measure_all()
        routed = route(circuit, device)
        assert ideal_distribution(routed.circuit) == pytest.approx(
            ideal_distribution(circuit)
        )

    def test_adjacent_gates_need_no_swaps(self):
        device = make_device(Topology.line(4))
        routed = route(Circuit(2).cx(0, 1).cx(1, 0), device)
        assert routed.num_swaps == 0

    def test_rejects_undcomposed(self):
        device = make_device(Topology.line(4))
        circuit = Circuit(3).ccx(0, 1, 2)
        mapping = default_mapping(circuit, device)
        reliability = compute_reliability(device)
        with pytest.raises(ValueError, match="decomposed"):
            lookahead_route(circuit, device, mapping, reliability)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 5000))
    def test_random_circuits_preserved(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        device = make_device(Topology.ring(5))
        circuit = Circuit(4)
        for _ in range(10):
            kind = rng.integers(3)
            if kind == 0:
                circuit.h(int(rng.integers(4)))
            elif kind == 1:
                circuit.t(int(rng.integers(4)))
            else:
                a, b = rng.choice(4, size=2, replace=False)
                circuit.cx(int(a), int(b))
        circuit.measure_all()
        routed = route(circuit, device)
        assert ideal_distribution(routed.circuit) == pytest.approx(
            ideal_distribution(circuit), abs=1e-9
        )


class TestSharedSwaps:
    def test_one_swap_serves_consecutive_gates(self):
        # Two gates both blocked on the same separation: lookahead
        # routing resolves them with fewer swaps than per-gate routing.
        from repro.compiler.routing import route_circuit

        device = make_device(Topology.line(4))
        circuit = Circuit(4).cx(0, 3).cx(3, 0).cx(0, 3)
        decomposed = decompose_to_basis(circuit)
        mapping = default_mapping(decomposed, device)
        reliability = compute_reliability(device)
        ahead = lookahead_route(decomposed, device, mapping, reliability)
        basic = route_circuit(decomposed, device, mapping, reliability)
        assert ahead.num_swaps <= basic.num_swaps

    def test_pipeline_integration(self):
        device = ibmq14_melbourne()
        circuit, correct = bernstein_vazirani(6)
        compiler = TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN, router="lookahead"
        )
        program = compiler.compile(circuit)
        assert ideal_distribution(program.circuit)[correct] == pytest.approx(
            1.0
        )

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            TriQCompiler(ibmq14_melbourne(), router="teleport")

    def test_qft_routes_correctly(self):
        device = ibmq14_melbourne()
        circuit, correct = qft_benchmark(4)
        compiler = TriQCompiler(device, router="lookahead")
        program = compiler.compile(circuit)
        assert ideal_distribution(program.circuit)[correct] == pytest.approx(
            1.0
        )

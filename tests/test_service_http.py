"""Direct tests for the shared HTTP framing layer (slowloris included).

Satellite S3: ``read_request`` is the only thing standing between the
daemons and a peer that opens a socket and then stalls — mid request
line, mid headers, or mid body.  These tests drive the parser through
hand-fed ``asyncio.StreamReader`` objects with tiny timeouts, so each
slow-peer scenario is proven to time out (and to time out on the
*right* knob) in milliseconds, no real sockets or sleeps.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.service.http import HttpError, read_request, write_response


def run(coro):
    return asyncio.run(coro)


def reader_with(data: bytes, eof: bool = False) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


class CollectingWriter:
    """Just enough of a StreamWriter for write_response()."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    @property
    def data(self) -> bytes:
        return b"".join(self.chunks)


class TestSlowloris:
    def test_stalled_request_line_times_out(self):
        async def scenario():
            reader = asyncio.StreamReader()  # never sends a byte
            with pytest.raises(asyncio.TimeoutError):
                await read_request(reader, header_timeout_s=0.05)

        run(scenario())

    def test_stalled_mid_headers_times_out(self):
        async def scenario():
            reader = reader_with(
                b"POST /v1/compile HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                # ...and the peer goes quiet before the blank line.
            )
            with pytest.raises(asyncio.TimeoutError):
                await read_request(reader, header_timeout_s=0.05)

        run(scenario())

    def test_stalled_body_times_out_on_the_body_knob(self):
        """Headers arrive promptly; the body drips then stops.  The
        generous header timeout must not shelter the stalled body."""

        async def scenario():
            reader = reader_with(
                b"POST /v1/compile HTTP/1.1\r\n"
                b"Content-Length: 1000\r\n"
                b"\r\n"
                b'{"benchmark": '  # 14 of the promised 1000 bytes
            )
            start = time.monotonic()
            with pytest.raises(asyncio.TimeoutError):
                await read_request(
                    reader, header_timeout_s=30.0, body_timeout_s=0.05
                )
            return time.monotonic() - start

        elapsed = run(scenario())
        assert elapsed < 5.0  # the 30s header knob played no part

    def test_peer_that_dies_mid_body_raises_incomplete_read(self):
        async def scenario():
            reader = reader_with(
                b"POST /v1/compile HTTP/1.1\r\n"
                b"Content-Length: 100\r\n"
                b"\r\n"
                b"short",
                eof=True,
            )
            with pytest.raises(asyncio.IncompleteReadError):
                await read_request(reader, body_timeout_s=0.5)

        run(scenario())

    def test_fast_peer_is_unaffected_by_tiny_timeouts(self):
        async def scenario():
            reader = reader_with(
                b"POST /v1/compile HTTP/1.1\r\n"
                b"Content-Length: 2\r\n"
                b"\r\n"
                b"{}",
                eof=True,
            )
            return await read_request(
                reader, header_timeout_s=0.05, body_timeout_s=0.05
            )

        method, target, body = run(scenario())
        assert (method, target, body) == ("POST", "/v1/compile", b"{}")

    def test_clean_eof_returns_none(self):
        async def scenario():
            return await read_request(
                reader_with(b"", eof=True), header_timeout_s=0.05
            )

        assert run(scenario()) is None


class TestFraming:
    def test_malformed_request_line_is_400(self):
        async def scenario():
            reader = reader_with(b"NONSENSE\r\n\r\n", eof=True)
            with pytest.raises(HttpError) as excinfo:
                await read_request(reader, header_timeout_s=0.5)
            return excinfo.value

        assert run(scenario()).status == 400

    def test_bad_content_length_is_400(self):
        async def scenario():
            reader = reader_with(
                b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n",
                eof=True,
            )
            with pytest.raises(HttpError) as excinfo:
                await read_request(reader, header_timeout_s=0.5)
            return excinfo.value

        assert run(scenario()).status == 400

    def test_write_response_emits_extra_headers(self):
        writer = CollectingWriter()
        write_response(
            writer, 429, payload={"error": "busy"},
            headers={"Retry-After": "3"},
        )
        head, _, body = writer.data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 429 Too Many Requests"
        assert "Retry-After: 3" in lines
        assert lines[-1] == "Connection: close"  # extras come before
        assert b'"busy"' in body

    def test_write_response_without_extras_unchanged(self):
        writer = CollectingWriter()
        write_response(writer, 200, payload={"ok": True})
        head = writer.data.partition(b"\r\n\r\n")[0].decode("latin-1")
        assert "Retry-After" not in head

    def test_http_error_carries_retry_after(self):
        exc = HttpError(503, "draining", retry_after_s=2.5)
        assert exc.status == 503 and exc.retry_after_s == 2.5
        assert HttpError(400, "nope").retry_after_s is None


class TestDaemonUnderSlowloris:
    def test_stalled_connection_does_not_wedge_the_daemon(self, tmp_path):
        """A peer holding an open, silent connection must not block
        other clients (the accept loop is per-connection tasks)."""
        import socket

        from repro.cache import activate_cache

        from tests.test_service import ServiceHarness

        harness = ServiceHarness(
            cache_dir=tmp_path / "cache", wal_enabled=False
        )
        try:
            stalled = socket.create_connection(
                ("127.0.0.1", harness.service.port), timeout=5
            )
            stalled.sendall(b"POST /v1/compile HT")  # ...and stall
            try:
                status, payload = harness.request("GET", "/healthz")
                assert status == 200 and payload["status"] == "ok"
            finally:
                stalled.close()
        finally:
            harness.stop()
            activate_cache(None)

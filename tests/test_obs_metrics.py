"""Tests for the metrics registry and Prometheus exporter."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
    parse_prometheus,
    sweep_metrics,
    sweep_metrics_from_journal_records,
)


class TestCounter:
    def test_inc_and_value_per_labelset(self):
        counter = Counter("repro_events_total")
        counter.inc(event="hit")
        counter.inc(2, event="hit")
        counter.inc(event="miss")
        assert counter.value(event="hit") == 3
        assert counter.value(event="miss") == 1
        assert counter.value(event="never") == 0
        assert counter.total() == 4

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("ok").inc(**{"bad-label": "x"})

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2, k="x")
        b.inc(3, k="x")
        b.inc(1, k="y")
        a.merge(b)
        assert a.value(k="x") == 5
        assert a.value(k="y") == 1


class TestGauge:
    def test_set_inc_value(self):
        gauge = Gauge("g")
        gauge.set(4.5, op="hit")
        gauge.inc(op="hit")
        assert gauge.value(op="hit") == 5.5

    def test_merge_last_write_wins(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(9.0)
        a.merge(b)
        assert a.value() == 9.0


class TestHistogram:
    def test_count_sum_percentiles(self):
        hist = Histogram("h", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.2, 0.4, 0.8, 5.0):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(6.45)
        assert hist.percentile(0) == 0.05
        assert hist.percentile(100) == 5.0
        assert hist.percentile(50) == 0.4

    def test_percentile_interpolates(self):
        hist = Histogram("h", buckets=[1.0])
        hist.observe(0.0)
        hist.observe(1.0)
        assert hist.percentile(75) == pytest.approx(0.75)

    def test_percentile_label_subset_filter(self):
        hist = Histogram("h", buckets=[1.0])
        hist.observe(0.1, device="a", benchmark="BV4")
        hist.observe(0.3, device="a", benchmark="HS2")
        hist.observe(9.0, device="b", benchmark="BV4")
        assert hist.percentile(100, device="a") == 0.3
        assert hist.count(device="a") == 2
        assert hist.count() == 3

    def test_percentile_validation(self):
        hist = Histogram("h", buckets=[1.0])
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(50)  # no samples

    def test_bucket_rendering_is_cumulative_with_inf(self):
        hist = Histogram("h", buckets=[0.1, 1.0])
        for value in (0.05, 0.1, 0.5, 2.0):
            hist.observe(value)
        series = parse_prometheus("\n".join(hist.render()) + "\n")
        buckets = series["h_bucket"]
        # le is inclusive: the 0.1 sample lands in the 0.1 bucket.
        assert buckets['{"le": "0.1"}'] == 2
        assert buckets['{"le": "1"}'] == 3
        assert buckets['{"le": "+Inf"}'] == 4
        assert series["h_count"]["{}"] == 4
        assert series["h_sum"]["{}"] == pytest.approx(2.65)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_merge_folds_by_kind(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.histogram("h", buckets=[1.0]).observe(0.5)
        a.merge(b)
        assert a.counter("c").total() == 5
        assert a.get("h").count() == 1

    def test_render_round_trips_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("repro_tasks_total", "tasks").inc(
            device="IBM Q5 Tenerife", benchmark="BV4"
        )
        registry.gauge("repro_wall_seconds").set(1.25)
        registry.histogram("repro_latency_seconds", buckets=[1.0]).observe(0.4)
        series = parse_prometheus(registry.render_prometheus())
        assert (
            series["repro_tasks_total"][
                '{"benchmark": "BV4", "device": "IBM Q5 Tenerife"}'
            ]
            == 1
        )
        assert series["repro_wall_seconds"]["{}"] == 1.25
        assert '{"le": "+Inf"}' in series["repro_latency_seconds_bucket"]

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(reason='say "hi"\\\n')
        text = registry.render_prometheus()
        assert '\\"hi\\"' in text and "\\n" in text
        parsed = parse_prometheus(text)
        assert sum(parsed["c"].values()) == 1


class TestParser:
    def test_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("what is this\n")
        with pytest.raises(ValueError):
            parse_prometheus("metric{unquoted=3} 1\n")

    def test_skips_comments_and_blanks(self):
        parsed = parse_prometheus("# HELP x y\n\nx 3\n")
        assert parsed["x"]["{}"] == 3
        assert parse_prometheus("x +Inf\n")["x"]["{}"] == math.inf


class _FakeTask:
    def __init__(self, **kw):
        self.benchmark = kw.get("benchmark", "BV4")
        self.device = kw.get("device", "dev")
        self.compiler = kw.get("compiler", "TriQ-1QOptCN")
        self.elapsed_s = kw.get("elapsed_s", 0.1)
        self.cache_hit = kw.get("cache_hit")
        self.attempts = kw.get("attempts", 1)
        self.resumed = kw.get("resumed", False)


class _FakeMeasurement:
    def __init__(self, **kw):
        self.benchmark = kw.get("benchmark", "BV4")
        self.device = kw.get("device", "dev")
        self.compiler = kw.get("compiler", "TriQ-1QOptCN")
        self.contract_violations = kw.get("contract_violations", [])
        self.degraded = kw.get("degraded", False)


class _FakeFailure:
    kind = "crash"
    device = "dev"
    benchmark = "QFT"


class _FakeReport:
    def __init__(self):
        self.tasks = [
            _FakeTask(elapsed_s=0.1, cache_hit=True),
            _FakeTask(elapsed_s=0.3, cache_hit=False, attempts=3),
            _FakeTask(benchmark="HS2", elapsed_s=0.2, resumed=True),
        ]
        self.measurements = [
            _FakeMeasurement(contract_violations=["v1", "v2"]),
            _FakeMeasurement(benchmark="HS2", degraded=True),
        ]
        self.failures = [_FakeFailure()]
        self.skipped_days = [(3, "bad calibration")]
        self.total_time_s = 1.5
        self.workers = 4
        self.cache_stats = None


class TestSweepMetrics:
    def test_aggregates_tasks_failures_measurements(self):
        registry = sweep_metrics(_FakeReport())
        assert registry.counter("repro_sweep_tasks_total").total() == 3
        cache = registry.counter("repro_sweep_cache_events_total")
        assert cache.value(event="hit") == 1
        assert cache.value(event="miss") == 1
        assert registry.counter("repro_sweep_task_retries_total").total() == 2
        assert registry.counter("repro_sweep_resumed_cells_total").total() == 1
        failures = registry.counter("repro_sweep_task_failures_total")
        assert failures.value(kind="crash", device="dev", benchmark="QFT") == 1
        assert (
            registry.counter("repro_sweep_contract_violations_total").total()
            == 2
        )
        assert (
            registry.counter("repro_sweep_solver_degradations_total").total()
            == 1
        )
        assert registry.counter("repro_sweep_skipped_days_total").total() == 1
        assert registry.gauge("repro_sweep_wall_seconds").value() == 1.5
        assert registry.gauge("repro_sweep_workers").value() == 4

    def test_latency_percentiles_by_device(self):
        registry = sweep_metrics(_FakeReport())
        hist = registry.get("repro_sweep_task_latency_seconds")
        assert hist.count(device="dev") == 3
        assert hist.percentile(100, benchmark="BV4") == pytest.approx(0.3)

    def test_latency_summary_line(self):
        summary = latency_summary(sweep_metrics(_FakeReport()))
        assert summary.startswith("task latency p50/p90/p99:")
        assert summary.endswith("ms")

    def test_latency_summary_empty_registry(self):
        assert latency_summary(MetricsRegistry()) == ""

    def test_exports_cleanly(self):
        text = sweep_metrics(_FakeReport()).render_prometheus()
        parsed = parse_prometheus(text)
        assert "repro_sweep_task_latency_seconds_bucket" in parsed


class TestJournalMetrics:
    def test_rebuild_from_records(self):
        records = [
            {
                "v": 1,
                "task": "d1",
                "report": {
                    "benchmark": "BV4", "device": "dev",
                    "compiler": "Qiskit", "elapsed_s": 0.25,
                    "cache_hit": False, "attempts": 2,
                },
            },
            {"v": 1, "task": "d2", "report": None},  # tolerated
        ]
        registry = sweep_metrics_from_journal_records(records)
        assert registry.counter("repro_sweep_tasks_total").total() == 1
        assert registry.counter("repro_sweep_task_retries_total").total() == 1
        assert (
            registry.counter("repro_sweep_cache_events_total").value(
                event="miss"
            )
            == 1
        )
        assert registry.get("repro_sweep_task_latency_seconds").count() == 1

"""Tests for calibration data and the synthetic drift model."""

import numpy as np
import pytest

from repro.devices import CalibrationModel, Topology
from repro.devices.calibration import Calibration


def make_model(**overrides):
    topo = Topology.line(4)
    defaults = dict(
        edges=topo.edges(),
        num_qubits=4,
        mean_two_qubit_error=0.05,
        mean_single_qubit_error=0.002,
        mean_readout_error=0.03,
        seed=42,
    )
    defaults.update(overrides)
    return CalibrationModel(**defaults)


class TestCalibration:
    def test_edge_error_symmetric_key(self):
        cal = make_model().snapshot()
        assert cal.edge_error(0, 1) == cal.edge_error(1, 0)

    def test_missing_edge(self):
        cal = make_model().snapshot()
        with pytest.raises(KeyError, match="no calibrated 2Q gate"):
            cal.edge_error(0, 3)

    def test_reliability_complements_error(self):
        cal = make_model().snapshot()
        assert cal.edge_reliability(0, 1) == pytest.approx(
            1 - cal.edge_error(0, 1)
        )
        assert cal.qubit_reliability(2) == pytest.approx(
            1 - cal.qubit_error(2)
        )
        assert cal.readout_reliability(2) == pytest.approx(
            1 - cal.readout_error[2]
        )

    def test_uniform_blinds_variation(self):
        cal = make_model().snapshot()
        uniform = cal.uniform()
        rates = set(uniform.two_qubit_error.values())
        assert len(rates) == 1
        assert rates.pop() == pytest.approx(cal.average_two_qubit_error())

    def test_spread_factor(self):
        cal = Calibration(
            two_qubit_error={frozenset((0, 1)): 0.01, frozenset((1, 2)): 0.09},
            single_qubit_error={0: 0.001, 1: 0.001, 2: 0.001},
            readout_error={0: 0.01, 1: 0.01, 2: 0.01},
        )
        assert cal.spread_factor() == pytest.approx(9.0)


class TestModel:
    def test_snapshot_deterministic(self):
        model = make_model()
        a = model.snapshot(day=3)
        b = model.snapshot(day=3)
        assert a.two_qubit_error == b.two_qubit_error

    def test_different_days_differ(self):
        model = make_model()
        a = model.snapshot(day=0)
        b = model.snapshot(day=1)
        assert a.two_qubit_error != b.two_qubit_error

    def test_different_seeds_differ(self):
        a = make_model(seed=1).snapshot()
        b = make_model(seed=2).snapshot()
        assert a.two_qubit_error != b.two_qubit_error

    def test_series_length(self):
        assert len(make_model().series(5)) == 5

    def test_mean_tracks_published_average(self):
        # Across many edges/days the synthetic rates should stay near
        # the published device average.
        topo = Topology.full(8)
        model = CalibrationModel(
            edges=topo.edges(),
            num_qubits=8,
            mean_two_qubit_error=0.05,
            mean_single_qubit_error=0.002,
            mean_readout_error=0.03,
            spatial_sigma=0.3,
            seed=0,
        )
        rates = []
        for day in range(20):
            rates.extend(model.snapshot(day).two_qubit_error.values())
        assert np.mean(rates) == pytest.approx(0.05, rel=0.4)

    def test_rates_clamped_to_probability_range(self):
        model = make_model(
            mean_two_qubit_error=0.5, spatial_sigma=2.0, drift_sigma=2.0
        )
        for day in range(10):
            cal = model.snapshot(day)
            for rate in cal.two_qubit_error.values():
                assert 0.0 < rate < 1.0

    def test_narrow_sigma_gives_narrow_spread(self):
        wide = make_model(spatial_sigma=0.5, drift_sigma=0.2, seed=9)
        narrow = make_model(spatial_sigma=0.05, drift_sigma=0.02, seed=9)

        def spread(model):
            rates = []
            for day in range(10):
                rates.extend(model.snapshot(day).two_qubit_error.values())
            return max(rates) / min(rates)

        assert spread(narrow) < spread(wide)

    def test_day_recorded(self):
        assert make_model().snapshot(day=7).day == 7

"""Tests for the persistent compile cache (keys, store, integration)."""

import pickle

import pytest

from repro.cache import (
    CACHE_SCHEMA_VERSION,
    CompileCache,
    NullCache,
    cache_context,
    circuit_fingerprint,
    compile_key,
    device_fingerprint,
    digest,
    get_active_cache,
    open_cache,
    reliability_key,
    success_key,
)
from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import ibmq5_tenerife
from repro.experiments.runner import compile_with_cache
from repro.ir import Circuit
from repro.programs import bernstein_vazirani


@pytest.fixture
def cache(tmp_path):
    return CompileCache(tmp_path / "cache")


class TestKeys:
    def test_digest_is_stable(self):
        assert digest("a", 1, [2.5]) == digest("a", 1, [2.5])

    def test_digest_orders_mappings(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_digest_rejects_objects(self):
        with pytest.raises(TypeError):
            digest(object())

    def test_circuit_fingerprint_ignores_name(self):
        a = Circuit(2, name="one").h(0).cx(0, 1)
        b = Circuit(2, name="two").h(0).cx(0, 1)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_circuit_fingerprint_sees_structure(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(1, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_device_fingerprint_changes_with_day(self):
        device = ibmq5_tenerife()
        assert device_fingerprint(device, 0) != device_fingerprint(device, 1)

    def test_compile_key_varies_by_level(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        device = ibmq5_tenerife()
        keys = {
            compile_key(circuit, device, level.value)
            for level in OptimizationLevel
        }
        assert len(keys) == len(list(OptimizationLevel))

    def test_compile_key_varies_by_options(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        device = ibmq5_tenerife()
        assert compile_key(
            circuit, device, "x", options={"seed": 0}
        ) != compile_key(circuit, device, "x", options={"seed": 1})

    def test_key_namespaces_are_distinct(self):
        device = ibmq5_tenerife()
        circuit = Circuit(2).h(0).measure_all()
        assert compile_key(circuit, device, "x").startswith("cp-")
        assert reliability_key(device, True).startswith("rm-")
        assert success_key(circuit, device, "00").startswith("sr-")


class TestStore:
    def test_roundtrip(self, cache):
        cache.put("cp-abc", {"value": [1, 2, 3]})
        assert cache.get("cp-abc") == {"value": [1, 2, 3]}
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss(self, cache):
        assert cache.get("cp-missing") is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_len_counts_entries(self, cache):
        assert len(cache) == 0
        cache.put("cp-a", 1)
        cache.put("cp-b", 2)
        assert len(cache) == 2

    def test_corrupted_entry_recovers(self, cache):
        cache.put("cp-bad", {"ok": True})
        path = cache._path("cp-bad")
        path.write_bytes(b"not a pickle")
        assert cache.get("cp-bad") is None
        assert cache.stats.recovered == 1
        assert not path.exists()
        # The slot is usable again.
        cache.put("cp-bad", {"ok": True})
        assert cache.get("cp-bad") == {"ok": True}

    def test_schema_version_mismatch_recovers(self, cache):
        cache.put("cp-old", {"ok": True})
        path = cache._path("cp-old")
        with open(path, "wb") as handle:
            pickle.dump(
                (CACHE_SCHEMA_VERSION + 1, "cp-old", {"ok": True}), handle
            )
        assert cache.get("cp-old") is None
        assert cache.stats.recovered == 1

    def test_key_mismatch_recovers(self, cache):
        cache.put("cp-one", {"ok": True})
        path = cache._path("cp-one")
        other = cache._path("cp-onX")
        other.parent.mkdir(parents=True, exist_ok=True)
        path.rename(other)
        assert cache.get("cp-onX") is None
        assert cache.stats.recovered == 1

    def test_null_cache_noops(self):
        null = NullCache()
        null.put("cp-a", 1)
        assert null.get("cp-a") is None
        assert not null.enabled

    def test_open_cache_disabled(self, tmp_path):
        assert isinstance(open_cache(tmp_path, enabled=False), NullCache)
        assert isinstance(open_cache(tmp_path), CompileCache)


class TestActive:
    def test_context_restores_previous(self, cache):
        assert get_active_cache() is None
        with cache_context(cache):
            assert get_active_cache() is cache
            with cache_context(None):
                assert get_active_cache() is None
            assert get_active_cache() is cache
        assert get_active_cache() is None


class TestCompileIntegration:
    def test_cold_miss_then_warm_hit(self, cache):
        circuit, _ = bernstein_vazirani(4)
        device = ibmq5_tenerife()
        cold, hit_cold = compile_with_cache(
            circuit, device, OptimizationLevel.OPT_1QCN, cache=cache
        )
        warm, hit_warm = compile_with_cache(
            circuit, device, OptimizationLevel.OPT_1QCN, cache=cache
        )
        assert hit_cold is False and hit_warm is True
        assert warm.executable() == cold.executable()
        assert warm.two_qubit_gate_count() == cold.two_qubit_gate_count()
        assert warm.one_qubit_pulse_count() == cold.one_qubit_pulse_count()
        assert warm.num_swaps == cold.num_swaps
        assert warm.final_placement == cold.final_placement
        # The stored compile time is replayed, keeping warm runs
        # byte-identical regardless of machine load.
        assert warm.compile_time_s == cold.compile_time_s

    def test_no_cache_reports_none(self):
        circuit, _ = bernstein_vazirani(4)
        program, hit = compile_with_cache(
            circuit, ibmq5_tenerife(), OptimizationLevel.N
        )
        assert hit is None
        assert program.two_qubit_gate_count() >= 0

    def test_day_change_misses(self, cache):
        circuit, _ = bernstein_vazirani(4)
        device = ibmq5_tenerife()
        compile_with_cache(
            circuit, device, OptimizationLevel.N, day=0, cache=cache
        )
        _, hit = compile_with_cache(
            circuit, device, OptimizationLevel.N, day=1, cache=cache
        )
        assert hit is False

    def test_reliability_memoized_across_compilers(self, cache):
        circuit, _ = bernstein_vazirani(4)
        device = ibmq5_tenerife()
        with cache_context(cache):
            TriQCompiler(device).compile(circuit)
            before = cache.stats.hits
            TriQCompiler(device).compile(circuit)
        assert cache.stats.hits > before

"""Tests for gate specifications and matrices."""

import math

import numpy as np
import pytest

from repro.ir.gates import (
    GATE_SPECS,
    VIRTUAL_Z_GATES,
    gate_matrix,
    gate_spec,
    is_measurement,
    is_single_qubit,
    is_two_qubit,
)


def _is_unitary(mat: np.ndarray) -> bool:
    return np.allclose(mat @ mat.conj().T, np.eye(mat.shape[0]), atol=1e-10)


class TestSpecs:
    def test_all_specs_consistent(self):
        for name, spec in GATE_SPECS.items():
            assert spec.name == name

    def test_unknown_gate_message(self):
        with pytest.raises(KeyError, match="known gates"):
            gate_spec("frobnicate")

    def test_measure_has_no_matrix(self):
        with pytest.raises(ValueError):
            gate_spec("measure").matrix()

    def test_param_count_enforced(self):
        with pytest.raises(ValueError):
            gate_matrix("rx", ())
        with pytest.raises(ValueError):
            gate_matrix("h", (1.0,))

    def test_predicates(self):
        assert is_measurement("measure")
        assert not is_measurement("x")
        assert is_single_qubit("h")
        assert not is_single_qubit("cx")
        assert is_two_qubit("cx")
        assert is_two_qubit("xx")
        assert not is_two_qubit("ccx")

    def test_virtual_z_gates_are_diagonal(self):
        for name in VIRTUAL_Z_GATES:
            spec = gate_spec(name)
            params = (0.7,) * spec.num_params
            mat = gate_matrix(name, params)
            off_diagonal = mat - np.diag(np.diag(mat))
            assert np.allclose(off_diagonal, 0)


class TestMatrices:
    @pytest.mark.parametrize(
        "name,params",
        [
            (name, (0.7,) * spec.num_params)
            for name, spec in GATE_SPECS.items()
            if spec.matrix_fn is not None
        ],
    )
    def test_all_gates_unitary(self, name, params):
        mat = gate_matrix(name, params)
        spec = gate_spec(name)
        assert mat.shape == (2**spec.num_qubits, 2**spec.num_qubits)
        assert _is_unitary(mat)

    def test_cx_action(self):
        cx = gate_matrix("cx")
        # |10> -> |11> (control is the most significant bit).
        state = np.zeros(4)
        state[0b10] = 1
        np.testing.assert_allclose(
            cx @ state, np.eye(4)[0b11], atol=1e-12
        )

    def test_cz_symmetric(self):
        cz = gate_matrix("cz")
        np.testing.assert_allclose(cz, cz.T)

    def test_xx_maximally_entangling_at_quarter_pi(self):
        xx = gate_matrix("xx", (math.pi / 4,))
        state = xx @ np.eye(4)[0]
        # |00> -> (|00> - i|11>)/sqrt(2).
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(state[3]) == pytest.approx(1 / math.sqrt(2))

    def test_xx_zero_angle_is_identity(self):
        np.testing.assert_allclose(gate_matrix("xx", (0.0,)), np.eye(4))

    def test_ccx_permutation(self):
        ccx = gate_matrix("ccx")
        state = np.zeros(8)
        state[0b110] = 1
        np.testing.assert_allclose(ccx @ state, np.eye(8)[0b111])

    def test_cswap_permutation(self):
        cswap = gate_matrix("cswap")
        state = np.zeros(8)
        state[0b110] = 1  # control=1, a=1, b=0
        np.testing.assert_allclose(cswap @ state, np.eye(8)[0b101])

    def test_peres_is_toffoli_then_cx(self):
        peres = gate_matrix("peres")
        ccx = gate_matrix("ccx")
        cx_ab = np.kron(gate_matrix("cx"), np.eye(2))
        np.testing.assert_allclose(peres, cx_ab @ ccx, atol=1e-12)

    def test_or_truth_table(self):
        or_gate = gate_matrix("or")
        for a in (0, 1):
            for b in (0, 1):
                state = np.zeros(8)
                state[(a << 2) | (b << 1)] = 1
                out = or_gate @ state
                expected_index = (a << 2) | (b << 1) | (a | b)
                assert abs(out[expected_index]) == pytest.approx(1.0)

    def test_u2_is_u3_half_pi(self):
        np.testing.assert_allclose(
            gate_matrix("u2", (0.3, 0.4)),
            gate_matrix("u3", (math.pi / 2, 0.3, 0.4)),
        )

    def test_rz_vs_u1_phase_relation(self):
        lam = 0.9
        rz = gate_matrix("rz", (lam,))
        u1 = gate_matrix("u1", (lam,))
        phase = np.exp(1j * lam / 2)
        np.testing.assert_allclose(rz * phase, u1, atol=1e-12)

"""Vendor gate translation must preserve unitaries exactly."""

import math

import pytest

from tests.helpers import assert_equal_up_to_phase, make_device
from repro.compiler.translate import (
    naive_translate_1q,
    translate_two_qubit_gates,
)
from repro.devices import Topology
from repro.devices.gatesets import GATESET_BY_FAMILY, VendorFamily
from repro.ir import Circuit, gate_matrix
from repro.sim import circuit_unitary

IBM = GATESET_BY_FAMILY[VendorFamily.IBM]
RIGETTI = GATESET_BY_FAMILY[VendorFamily.RIGETTI]
UMDTI = GATESET_BY_FAMILY[VendorFamily.UMDTI]


def device_for(family, directed=False):
    topo = Topology(2, [(0, 1)], directed=directed)
    return make_device(topo, family)


class TestCnotTranslation:
    @pytest.mark.parametrize(
        "family",
        [VendorFamily.IBM, VendorFamily.RIGETTI, VendorFamily.UMDTI],
    )
    def test_cx_unitary_preserved(self, family):
        device = device_for(family)
        circuit = Circuit(2).cx(0, 1)
        translated = translate_two_qubit_gates(circuit, device)
        assert_equal_up_to_phase(
            circuit_unitary(translated), gate_matrix("cx")
        )

    def test_ibm_reversed_direction_uses_hadamards(self):
        device = device_for(VendorFamily.IBM, directed=True)
        # Hardware supports 0->1 only; ask for 1->0.
        circuit = Circuit(2).cx(1, 0)
        translated = translate_two_qubit_gates(circuit, device)
        # The emitted cx must be hardware-oriented.
        cx_insts = [i for i in translated if i.name == "cx"]
        assert all(i.qubits == (0, 1) for i in cx_insts)
        assert_equal_up_to_phase(
            circuit_unitary(translated),
            circuit_unitary(Circuit(2).cx(1, 0)),
        )

    def test_rigetti_emits_one_cz_per_cnot(self):
        device = device_for(VendorFamily.RIGETTI)
        translated = translate_two_qubit_gates(Circuit(2).cx(0, 1), device)
        assert translated.count_ops()["cz"] == 1
        assert "cx" not in translated.count_ops()

    def test_umdti_emits_one_xx_per_cnot(self):
        device = device_for(VendorFamily.UMDTI)
        translated = translate_two_qubit_gates(Circuit(2).cx(0, 1), device)
        counts = translated.count_ops()
        assert counts["xx"] == 1
        assert translated[1].params == (math.pi / 4,)

    @pytest.mark.parametrize(
        "family",
        [VendorFamily.IBM, VendorFamily.RIGETTI, VendorFamily.UMDTI],
    )
    def test_swap_lowered_to_three_2q_gates(self, family):
        device = device_for(family)
        circuit = Circuit(2).add("swap", (0, 1))
        translated = translate_two_qubit_gates(circuit, device)
        assert translated.num_two_qubit_gates() == 3
        assert_equal_up_to_phase(
            circuit_unitary(translated), gate_matrix("swap")
        )

    def test_swap_on_directed_hardware(self):
        device = device_for(VendorFamily.IBM, directed=True)
        circuit = Circuit(2).add("swap", (0, 1))
        translated = translate_two_qubit_gates(circuit, device)
        assert_equal_up_to_phase(
            circuit_unitary(translated), gate_matrix("swap")
        )

    def test_uncoupled_pair_rejected(self):
        device = make_device(Topology.line(3), VendorFamily.IBM)
        # line(3) is undirected -> both directions fine, so use directed.
        device = make_device(
            Topology(3, [(0, 1)], directed=True), VendorFamily.IBM
        )
        with pytest.raises(ValueError, match="no hardware CNOT"):
            translate_two_qubit_gates(Circuit(3).cx(0, 2), device)


NAIVE_1Q_GATES = [
    ("h", ()),
    ("x", ()),
    ("y", ()),
    ("z", ()),
    ("s", ()),
    ("sdg", ()),
    ("t", ()),
    ("tdg", ()),
    ("rx", (0.7,)),
    ("ry", (-1.2,)),
    ("rz", (2.1,)),
]


class TestNaive1QTranslation:
    @pytest.mark.parametrize("gate,params", NAIVE_1Q_GATES)
    @pytest.mark.parametrize(
        "gate_set", [IBM, RIGETTI, UMDTI], ids=lambda g: g.family.value
    )
    def test_unitary_preserved(self, gate, params, gate_set):
        circuit = Circuit(1).add(gate, (0,), params)
        translated = naive_translate_1q(circuit, gate_set)
        assert_equal_up_to_phase(
            circuit_unitary(translated),
            gate_matrix(gate, params),
        )

    @pytest.mark.parametrize(
        "gate_set", [IBM, RIGETTI, UMDTI], ids=lambda g: g.family.value
    )
    def test_output_is_software_visible(self, gate_set):
        circuit = Circuit(1)
        for gate, params in NAIVE_1Q_GATES:
            circuit.add(gate, (0,), params)
        translated = naive_translate_1q(circuit, gate_set)
        for inst in translated:
            assert gate_set.supports(inst.name), inst.name

    def test_z_family_is_virtual_everywhere(self):
        # Z rotations become u1/rz: zero pulses on every vendor.
        from repro.compiler.onequbit import count_pulses

        circuit = Circuit(1).z(0).s(0).t(0).tdg(0).sdg(0).rz(0.3, 0)
        for gate_set in (IBM, RIGETTI, UMDTI):
            translated = naive_translate_1q(circuit, gate_set)
            assert count_pulses(translated) == 0

    def test_identity_dropped(self):
        circuit = Circuit(1).add("id", (0,))
        for gate_set in (IBM, RIGETTI, UMDTI):
            assert len(naive_translate_1q(circuit, gate_set)) == 0

    def test_umdti_x_is_single_pulse(self):
        translated = naive_translate_1q(Circuit(1).x(0), UMDTI)
        assert [i.name for i in translated] == ["rxy"]

    def test_measure_passes_through(self):
        circuit = Circuit(1).h(0).measure(0)
        translated = naive_translate_1q(circuit, IBM)
        assert translated.count_ops()["measure"] == 1

"""The differential fuzzing harness: generation, classification,
shrinking, reproducer artifacts."""

import json
import random

import pytest

from repro.contracts import CONTRACT_FAULT_ENV
from repro.contracts.fuzz import (
    FuzzConfig,
    circuit_from_payload,
    circuit_to_payload,
    classify,
    random_circuit,
    replay_reproducer,
    run_fuzz,
    shrink_circuit,
)
from repro.devices import ibmq5_tenerife
from repro.ir import Circuit


class TestGeneration:
    def test_deterministic_in_seed(self):
        a = random_circuit(random.Random(42), 3, 10)
        b = random_circuit(random.Random(42), 3, 10)
        assert a.instructions == b.instructions

    def test_always_measured(self):
        circuit = random_circuit(random.Random(7), 2, 5)
        assert sum(1 for i in circuit if i.is_measurement) == 2

    def test_respects_width(self):
        circuit = random_circuit(random.Random(3), 4, 20)
        assert circuit.num_qubits == 4
        assert all(q < 4 for inst in circuit for q in inst.qubits)


class TestPayloadRoundtrip:
    def test_roundtrip(self):
        circuit = random_circuit(random.Random(1), 3, 8, name="rt")
        restored = circuit_from_payload(circuit_to_payload(circuit))
        assert restored.num_qubits == circuit.num_qubits
        assert restored.name == "rt"
        assert restored.instructions == circuit.instructions

    def test_payload_is_json_safe(self):
        circuit = random_circuit(random.Random(2), 2, 6)
        text = json.dumps(circuit_to_payload(circuit))
        assert circuit_from_payload(json.loads(text)).instructions == (
            circuit.instructions
        )


class TestClassify:
    def test_clean_compile_is_none(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        assert classify(circuit, ibmq5_tenerife(), "qiskit") is None

    def test_injected_fault_is_contract(self, monkeypatch):
        monkeypatch.setenv(CONTRACT_FAULT_ENV, "codegen")
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        from repro.compiler import OptimizationLevel

        outcome = classify(
            circuit, ibmq5_tenerife(), OptimizationLevel.OPT_1Q
        )
        assert outcome is not None
        kind, error = outcome
        assert kind == "contract"
        assert "CODEGEN003" in error

    def test_unmeasured_circuit_skips_differential(self):
        assert classify(Circuit(2).h(0), ibmq5_tenerife(), "qiskit") is None


class TestCampaign:
    def test_seeded_small_campaign_clean(self):
        config = FuzzConfig(
            circuits=3,
            seed=0,
            devices=["tenerife"],
            compilers=["TriQ-1QOptCN", "Qiskit"],
        )
        report = run_fuzz(config)
        assert report.ok
        assert report.attempts == 6

    def test_injected_fault_produces_shrunk_artifact(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(CONTRACT_FAULT_ENV, "codegen")
        config = FuzzConfig(
            circuits=1,
            seed=0,
            devices=["tenerife"],
            compilers=["TriQ-1QOpt"],
            artifact_dir=tmp_path,
        )
        report = run_fuzz(config)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.kind == "contract"
        assert finding.shrunk_instructions <= finding.original_instructions
        assert finding.artifact_path is not None
        payload = json.loads(open(finding.artifact_path).read())
        assert payload["kind"] == "contract"
        assert payload["device"] == "IBM Q5 Tenerife"
        # Replay: still fails with the fault in, clean with it out.
        assert replay_reproducer(finding.artifact_path) is not None
        monkeypatch.delenv(CONTRACT_FAULT_ENV)
        assert replay_reproducer(finding.artifact_path) is None

    def test_shrink_preserves_failure_kind(self, monkeypatch):
        monkeypatch.setenv(CONTRACT_FAULT_ENV, "translate")
        from repro.compiler import OptimizationLevel

        circuit = random_circuit(random.Random(5), 3, 10)
        device = ibmq5_tenerife()
        level = OptimizationLevel.OPT_1Q
        outcome = classify(circuit, device, level)
        assert outcome is not None and outcome[0] == "contract"
        reduced = shrink_circuit(circuit, device, level, "contract")
        assert len(reduced.instructions) <= len(circuit.instructions)
        still = classify(reduced, device, level)
        assert still is not None and still[0] == "contract"

    def test_differential_detected_without_contracts(self):
        # A semantics bug that slips past an "off"-style compile is
        # still caught by the ideal-distribution cross-check: fake it
        # by classifying a miscompiled program through a monkeypatched
        # compiler label. Simplest real path: classify with warn mode
        # and a fault that only semantics would notice is covered above;
        # here assert the differential branch itself fires.
        from repro.contracts.fuzz import classify as classify_fn
        import repro.experiments.runner as runner_mod

        device = ibmq5_tenerife()
        source = Circuit(2).x(0).measure_all()
        real_compile_with = runner_mod.compile_with

        def miscompile(circuit, dev, compiler, **kwargs):
            kwargs.pop("contracts", None)
            program = real_compile_with(
                Circuit(2).measure_all(), dev, compiler
            )
            return program

        import unittest.mock as mock

        with mock.patch.object(
            runner_mod, "compile_with", side_effect=miscompile
        ):
            outcome = classify_fn(source, device, "qiskit", contracts="off")
        assert outcome is not None
        assert outcome[0] == "differential"

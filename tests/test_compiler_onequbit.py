"""Tests for the quaternion-based 1Q optimizer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import assert_equal_up_to_phase
from repro.compiler.onequbit import (
    count_pulses,
    emit_rotation,
    gate_quaternion,
    optimize_single_qubit_gates,
)
from repro.compiler.translate import naive_translate_1q
from repro.devices.gatesets import GATESET_BY_FAMILY, VendorFamily
from repro.ir import Circuit, gate_matrix
from repro.rotations import Quaternion, quaternion_to_unitary
from repro.sim import circuit_unitary

IBM = GATESET_BY_FAMILY[VendorFamily.IBM]
RIGETTI = GATESET_BY_FAMILY[VendorFamily.RIGETTI]
UMDTI = GATESET_BY_FAMILY[VendorFamily.UMDTI]
ALL_GATESETS = [IBM, RIGETTI, UMDTI]

PARAMETRIC = {
    "rx": 1, "ry": 1, "rz": 1, "u1": 1, "rxy": 2, "u2": 2, "u3": 3,
}
FIXED = ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "id"]

angle = st.floats(
    min_value=-2 * math.pi,
    max_value=2 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)


def gate_strategy():
    fixed = st.sampled_from(FIXED).map(lambda n: (n, ()))
    parametric = st.sampled_from(sorted(PARAMETRIC)).flatmap(
        lambda n: st.tuples(
            st.just(n), st.tuples(*([angle] * PARAMETRIC[n]))
        )
    )
    return st.one_of(fixed, parametric)


class TestGateQuaternion:
    @pytest.mark.parametrize("name", FIXED)
    def test_fixed_gates_match_matrices(self, name):
        q = gate_quaternion(name)
        assert_equal_up_to_phase(
            quaternion_to_unitary(q), gate_matrix(name)
        )

    @pytest.mark.parametrize(
        "name,params",
        [
            ("rx", (0.7,)),
            ("ry", (-0.3,)),
            ("rz", (1.9,)),
            ("u1", (0.4,)),
            ("rxy", (1.1, 0.6)),
            ("u2", (0.5, -0.8)),
            ("u3", (1.2, 0.3, -0.7)),
        ],
    )
    def test_parametric_gates_match_matrices(self, name, params):
        q = gate_quaternion(name, params)
        assert_equal_up_to_phase(
            quaternion_to_unitary(q), gate_matrix(name, params)
        )

    def test_unknown_gate(self):
        with pytest.raises(ValueError, match="not a known 1Q"):
            gate_quaternion("cx")


class TestEmitRotation:
    @pytest.mark.parametrize(
        "gate_set", ALL_GATESETS, ids=lambda g: g.family.value
    )
    def test_identity_emits_nothing(self, gate_set):
        assert emit_rotation(0, Quaternion.identity(), gate_set) == []

    @pytest.mark.parametrize(
        "gate_set", ALL_GATESETS, ids=lambda g: g.family.value
    )
    def test_pure_z_costs_no_pulses(self, gate_set):
        out = emit_rotation(0, Quaternion.rz(1.234), gate_set)
        circuit = Circuit(1, instructions=out)
        assert count_pulses(circuit) == 0
        assert_equal_up_to_phase(
            circuit_unitary(circuit), gate_matrix("rz", (1.234,))
        )

    def test_ibm_half_pi_y_uses_u2(self):
        out = emit_rotation(0, Quaternion.ry(math.pi / 2), IBM)
        assert [i.name for i in out] == ["u2"]

    def test_ibm_general_uses_u3(self):
        q = Quaternion.rx(0.9) * Quaternion.ry(0.4)
        out = emit_rotation(0, q, IBM)
        assert [i.name for i in out] == ["u3"]

    def test_rigetti_x90_single_pulse(self):
        out = emit_rotation(0, Quaternion.rx(math.pi / 2), RIGETTI)
        circuit = Circuit(1, instructions=out)
        assert count_pulses(circuit) == 1

    def test_rigetti_general_two_pulses(self):
        q = Quaternion.rx(0.9) * Quaternion.ry(0.4)
        circuit = Circuit(1, instructions=emit_rotation(0, q, RIGETTI))
        assert count_pulses(circuit) == 2

    def test_umdti_any_rotation_single_pulse(self):
        # The arbitrary Rxy gate absorbs any rotation in ONE pulse.
        q = (
            Quaternion.rx(0.9)
            * Quaternion.ry(0.4)
            * Quaternion.rz(1.7)
            * Quaternion.rx(-0.2)
        )
        circuit = Circuit(1, instructions=emit_rotation(0, q, UMDTI))
        assert count_pulses(circuit) == 1
        assert_equal_up_to_phase(
            circuit_unitary(circuit), quaternion_to_unitary(q)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from([0, 1, 2]),
        st.tuples(angle, angle, angle),
    )
    def test_emission_correct_for_random_rotations(self, gs_index, angles):
        gate_set = ALL_GATESETS[gs_index]
        q = (
            Quaternion.rz(angles[0])
            * Quaternion.rx(angles[1])
            * Quaternion.rz(angles[2])
        )
        circuit = Circuit(1, instructions=emit_rotation(0, q, gate_set))
        if len(circuit) == 0:
            assert q.is_identity(atol=1e-7)
        else:
            assert_equal_up_to_phase(
                circuit_unitary(circuit), quaternion_to_unitary(q), atol=1e-7
            )


class TestOptimizePass:
    def test_h_h_cancels(self):
        circuit = Circuit(1).h(0).h(0)
        out = optimize_single_qubit_gates(circuit, IBM)
        assert len(out) == 0

    def test_merges_across_runs_not_across_2q(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1).h(0)
        out = optimize_single_qubit_gates(circuit, IBM)
        names = [i.name for i in out]
        # The pre-CX pair cancels; the post-CX H survives as u2.
        assert names == ["cx", "u2"]

    def test_t_ladder_collapses_to_virtual_z(self):
        circuit = Circuit(1)
        for _ in range(4):
            circuit.t(0)
        out = optimize_single_qubit_gates(circuit, IBM)
        assert count_pulses(out) == 0  # T^4 = Z, error-free

    def test_barrier_flushes(self):
        circuit = Circuit(1).h(0)
        circuit.barrier()
        circuit.h(0)
        out = optimize_single_qubit_gates(circuit, IBM)
        # The barrier prevents the cancellation.
        assert count_pulses(out) == 2

    def test_measure_flushes_before(self):
        circuit = Circuit(1).x(0).measure(0)
        out = optimize_single_qubit_gates(circuit, IBM)
        names = [i.name for i in out]
        assert names.index("u3") < names.index("measure")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(gate_strategy(), min_size=1, max_size=12))
    def test_random_1q_sequences_preserved(self, gates):
        circuit = Circuit(1)
        for name, params in gates:
            circuit.add(name, (0,), params)
        for gate_set in ALL_GATESETS:
            out = optimize_single_qubit_gates(circuit, gate_set)
            if len(out) == 0:
                expected = circuit_unitary(circuit)
                # Must be identity up to phase.
                ratio = expected[0, 0]
                assert abs(abs(ratio) - 1) < 1e-6
                np.testing.assert_allclose(
                    expected, ratio * np.eye(2), atol=1e-6
                )
            else:
                assert_equal_up_to_phase(
                    circuit_unitary(out), circuit_unitary(circuit), atol=1e-6
                )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(gate_strategy(), min_size=1, max_size=10))
    def test_never_more_pulses_than_naive(self, gates):
        circuit = Circuit(1)
        for name, params in gates:
            circuit.add(name, (0,), params)
        for gate_set in ALL_GATESETS:
            optimized = optimize_single_qubit_gates(circuit, gate_set)
            # IBM naive can't express u2/u3 inputs naively; skip those.
            try:
                naive = naive_translate_1q(circuit, gate_set)
            except ValueError:
                continue
            assert count_pulses(optimized) <= count_pulses(naive)

    def test_count_pulses_rejects_untranslated(self):
        with pytest.raises(ValueError, match="software-visible"):
            count_pulses(Circuit(1).h(0))

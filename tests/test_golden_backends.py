"""Golden-file regression tests for the three code emitters.

Each case compiles one suite benchmark for one study machine at the
full TriQ-1QOptCN level and compares the emitted executable —
OpenQASM (IBM), Quil (Rigetti), UMDTI pulse assembly (UMD) —
**byte-for-byte** against a checked-in golden file.  Any change to
decomposition, mapping, routing, translation, 1Q optimization, or the
emitters themselves shows up here as a readable text diff.

Intentional output changes are re-blessed with::

    pytest tests/test_golden_backends.py --update-golden

then reviewed like any other diff.  The solver runs with no time
limit so placements are deterministic on any machine speed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import device_by_name
from repro.programs import benchmark_by_name

GOLDEN_DIR = Path(__file__).parent / "golden"

#: device lookup name -> (slug, emitter family asserted in the header)
DEVICES = {
    "tenerife": "openqasm",
    "agave": "quil",
    "umd": "umdti",
}
BENCHMARKS = ["BV4", "Toffoli", "HS2"]

CASES = [
    (benchmark, device)
    for benchmark in BENCHMARKS
    for device in DEVICES
]


def _emit(benchmark_name: str, device_name: str, opt: str = "none") -> str:
    circuit, _ = benchmark_by_name(benchmark_name).build()
    device = device_by_name(device_name)
    compiler = TriQCompiler(
        device,
        level=OptimizationLevel.OPT_1QCN,
        time_limit_s=None,  # exact solve: deterministic on any machine
        opt=opt,
    )
    return compiler.compile(circuit).executable()


def _golden_path(
    benchmark_name: str, device_name: str, opt: str = "none"
) -> Path:
    fmt = DEVICES[device_name]
    suffix = "" if opt == "none" else f"-opt{opt}"
    return GOLDEN_DIR / f"{benchmark_name.lower()}-{device_name}{suffix}.{fmt}"


@pytest.mark.parametrize("bench_name,device_name", CASES)
def test_emitter_output_matches_golden(bench_name, device_name, request):
    path = _golden_path(bench_name, device_name)
    text = _emit(bench_name, device_name)
    assert text, "emitter produced no output"
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"golden file rewritten: {path.name}")
    assert path.exists(), (
        f"golden file {path} missing; generate it with "
        "pytest tests/test_golden_backends.py --update-golden"
    )
    golden = path.read_text(encoding="utf-8")
    assert text == golden, (
        f"emitted {DEVICES[device_name]} for {bench_name} on "
        f"{device_name} no longer matches {path.name}; if the change is "
        "intentional, re-bless with --update-golden and review the diff"
    )


@pytest.mark.parametrize("bench_name,device_name", CASES)
def test_optimized_emitter_output_matches_golden(
    bench_name, device_name, request
):
    """Same battery at ``--opt full``: the pass manager's rewrites are
    deterministic, so optimized emission is golden-testable too — and a
    drift in any pass shows up as a text diff against these files while
    the unoptimized goldens above stay untouched."""
    path = _golden_path(bench_name, device_name, opt="full")
    text = _emit(bench_name, device_name, opt="full")
    assert text, "emitter produced no output"
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"golden file rewritten: {path.name}")
    assert path.exists(), (
        f"golden file {path} missing; generate it with "
        "pytest tests/test_golden_backends.py --update-golden"
    )
    golden = path.read_text(encoding="utf-8")
    assert text == golden, (
        f"emitted {DEVICES[device_name]} for {bench_name} on "
        f"{device_name} at --opt full no longer matches {path.name}; if "
        "the change is intentional, re-bless with --update-golden and "
        "review the diff"
    )


def test_opt_none_emission_matches_default():
    """`--opt none` must be byte-identical to omitting the flag — the
    back-compat guarantee that makes the preset opt-in."""
    for bench_name, device_name in CASES:
        assert _emit(bench_name, device_name, opt="none") == _emit(
            bench_name, device_name
        )


def test_emission_is_deterministic():
    """The premise of golden testing: same inputs, same bytes."""
    assert _emit("BV4", "tenerife") == _emit("BV4", "tenerife")
    assert _emit("BV4", "tenerife", opt="full") == _emit(
        "BV4", "tenerife", opt="full"
    )

"""Decomposition correctness: every expansion preserves the unitary."""

import pytest

from tests.helpers import assert_equal_up_to_phase
from repro.ir import Circuit, decompose_to_basis, gate_matrix
from repro.sim import circuit_unitary


@pytest.mark.parametrize(
    "gate,qubits",
    [
        ("ccx", (0, 1, 2)),
        ("cswap", (0, 1, 2)),
        ("peres", (0, 1, 2)),
        ("or", (0, 1, 2)),
        ("swap", (0, 1)),
        ("cz", (0, 1)),
    ],
)
def test_expansion_preserves_unitary(gate, qubits):
    num_qubits = len(qubits)
    circ = Circuit(num_qubits).add(gate, qubits)
    lowered = decompose_to_basis(circ)
    assert_equal_up_to_phase(
        circuit_unitary(lowered), gate_matrix(gate)
    )


def test_output_is_in_basis():
    circ = Circuit(3).ccx(0, 1, 2).cswap(0, 1, 2).swap(0, 2)
    lowered = decompose_to_basis(circ)
    for inst in lowered:
        assert inst.num_qubits == 1 or inst.name == "cx"


def test_idempotent():
    circ = Circuit(2).h(0).cx(0, 1).measure_all()
    once = decompose_to_basis(circ)
    twice = decompose_to_basis(once)
    assert [str(i) for i in once] == [str(i) for i in twice]


def test_permuted_qubits():
    # Toffoli with scrambled qubit roles still matches its matrix.
    circ = Circuit(3).add("ccx", (2, 0, 1))
    lowered = decompose_to_basis(circ)
    reference = Circuit(3).add("ccx", (2, 0, 1))
    assert_equal_up_to_phase(
        circuit_unitary(lowered), circuit_unitary(reference)
    )


def test_measure_and_barrier_pass_through():
    circ = Circuit(2).ccx_free = Circuit(2)
    circ = Circuit(2).h(0)
    circ.barrier()
    circ.measure_all()
    lowered = decompose_to_basis(circ)
    names = [i.name for i in lowered]
    assert names == ["h", "barrier", "measure", "measure"]


def test_toffoli_gate_budget():
    # The standard network: 6 CNOTs, 9 single-qubit gates.
    lowered = decompose_to_basis(Circuit(3).ccx(0, 1, 2))
    counts = lowered.count_ops()
    assert counts["cx"] == 6
    assert lowered.num_single_qubit_gates() == 9

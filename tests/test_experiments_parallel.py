"""Tests for the parallel sweep engine."""

import pytest

from repro.cache import open_cache
from repro.compiler import OptimizationLevel
from repro.devices import ibmq5_tenerife
from repro.experiments.parallel import (
    SweepReport,
    derive_task_seed,
    run_sweep,
)
from repro.experiments.runner import sweep
from repro.ir import Circuit
from repro.programs import Benchmark, benchmark_by_name

LEVELS = [OptimizationLevel.N, OptimizationLevel.OPT_1QCN]


def strip_timing(measurements):
    """Measurements with the wall-clock fields neutralized."""
    stripped = []
    for m in measurements:
        clone = type(m)(
            **{**m.__dict__, "compile_time_s": 0.0, "solver_time_s": 0.0}
        )
        stripped.append(clone)
    return stripped


class TestSerial:
    def test_matches_legacy_sweep(self):
        device = ibmq5_tenerife()
        via_engine = run_sweep(
            device, LEVELS, with_success=False
        ).measurements
        via_legacy = sweep(device, LEVELS, with_success=False)
        assert strip_timing(via_engine) == strip_timing(via_legacy)

    def test_report_telemetry(self):
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4"],
            with_success=False,
        )
        assert isinstance(report, SweepReport)
        assert report.mode == "serial"
        assert report.workers == 1
        assert len(report.tasks) == 1
        assert report.tasks[0].benchmark == "BV4"
        assert report.total_time_s > 0

    def test_fits_filter_skips_large_benchmarks(self):
        # BV8 needs 8 qubits; Tenerife has 5.
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "BV8"],
            with_success=False,
        )
        assert [m.benchmark for m in report.measurements] == ["BV4"]

    def test_adhoc_benchmark_runs_serially(self):
        adhoc = Benchmark(
            name="adhoc-ghz3",
            factory=lambda: (
                Circuit(3, name="adhoc-ghz3").h(0).cx(0, 1).cx(1, 2)
                .measure_all(),
                "000",
            ),
            interaction_shape="chain",
        )
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N, OptimizationLevel.OPT_1Q],
            benchmarks=[adhoc],
            workers=4,
            with_success=False,
        )
        assert report.mode == "serial"
        assert [m.benchmark for m in report.measurements] == ["adhoc-ghz3"] * 2


class TestParallel:
    def test_cold_parallel_matches_serial(self):
        device = ibmq5_tenerife()
        serial = run_sweep(device, LEVELS, with_success=False)
        parallel = run_sweep(device, LEVELS, with_success=False, workers=2)
        assert strip_timing(parallel.measurements) == strip_timing(
            serial.measurements
        )

    def test_warm_parallel_byte_identical_to_serial(self, tmp_path):
        device = ibmq5_tenerife()
        cache = open_cache(tmp_path / "cache")
        kwargs = dict(
            benchmarks=["BV4", "Toffoli", "Fredkin"],
            fault_samples=30,
            cache=cache,
        )
        run_sweep(device, LEVELS, **kwargs)  # populate
        warm_serial = run_sweep(device, LEVELS, **kwargs)
        warm_parallel = run_sweep(device, LEVELS, workers=4, **kwargs)
        assert warm_parallel.measurements == warm_serial.measurements
        assert all(t.cache_hit for t in warm_parallel.tasks)

    def test_with_success_deterministic_across_workers(self):
        device = ibmq5_tenerife()
        kwargs = dict(benchmarks=["BV4"], fault_samples=30, base_seed=7)
        one = run_sweep(device, LEVELS, **kwargs)
        two = run_sweep(device, LEVELS, workers=2, **kwargs)
        assert strip_timing(one.measurements) == strip_timing(
            two.measurements
        )

    def test_task_order_matches_serial_grid(self):
        report = run_sweep(
            ibmq5_tenerife(),
            LEVELS,
            benchmarks=["BV4", "Toffoli"],
            workers=2,
            with_success=False,
        )
        grid = [(m.benchmark, m.compiler) for m in report.measurements]
        assert grid == [
            ("BV4", "TriQ-N"),
            ("BV4", "TriQ-1QOptCN"),
            ("Toffoli", "TriQ-N"),
            ("Toffoli", "TriQ-1QOptCN"),
        ]


class TestSeeds:
    def test_derive_task_seed_deterministic(self):
        a = derive_task_seed(3, "BV4", "ibmq5", "TriQ-N", 0)
        b = derive_task_seed(3, "BV4", "ibmq5", "TriQ-N", 0)
        assert a == b
        assert 0 <= a < 2**31

    def test_derive_task_seed_distinct_per_identity(self):
        seeds = {
            derive_task_seed(3, bench, "ibmq5", level, 0)
            for bench in ("BV4", "BV6", "Toffoli")
            for level in ("TriQ-N", "TriQ-1QOptCN")
        }
        assert len(seeds) == 6

    def test_base_seed_changes_results_seed(self):
        assert derive_task_seed(3, "BV4") != derive_task_seed(4, "BV4")


class TestRunnerFacade:
    def test_sweep_accepts_string_names(self):
        results = run_sweep(
            "tenerife",
            [OptimizationLevel.N],
            benchmarks=[benchmark_by_name("BV4")],
            with_success=False,
        ).measurements
        assert results[0].device == ibmq5_tenerife().name

    def test_unknown_compiler_label_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(
                ibmq5_tenerife(),
                ["not-a-compiler"],
                benchmarks=["BV4"],
                with_success=False,
            )

"""Differential equivalence: vectorized kernels vs serial references.

The vectorized hot paths (batched trajectory sampling, log-space
Floyd-Warshall reliability, warm-started mapping) each keep their
serial predecessor importable as ``_reference_*``.  This suite proves,
on every study device, that the fast path reproduces the reference
exactly:

* trajectory sampling — **exact Counter equality** (same seed, same
  histogram, bit for bit);
* reliability matrices — ``np.allclose`` on every float table plus
  **identical** ``next_hop`` (the routing tiebreaks must not drift);
* mapping — a warm hint (same-problem or cross-calibration-day) never
  changes the returned placement, and the batched success estimator
  returns the reference's exact float.

Workloads are seeded random circuits (``repro.contracts.fuzz``), so a
failure replays exactly from the test id.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.compiler import (
    OptimizationLevel,
    TriQCompiler,
    compute_reliability,
)
from repro.compiler.mapping import smt_mapping
from repro.compiler.reliability import _reference_compute_reliability
from repro.contracts.fuzz import random_circuit
from repro.devices import all_devices
from repro.sim.success import (
    _reference_monte_carlo_success_rate,
    monte_carlo_success_rate,
)
from repro.sim.trajectories import _reference_sample_counts, sample_counts

DEVICES = {device.name: device for device in all_devices()}
DEVICE_NAMES = sorted(DEVICES)


def _compiled_random(device, seed, num_qubits=3, num_gates=10):
    """A seeded random circuit compiled onto ``device``."""
    rng = random.Random(seed)
    circuit = random_circuit(
        rng, num_qubits, num_gates, name=f"eqv{seed}"
    )
    compiler = TriQCompiler(
        device, level=OptimizationLevel.OPT_1QCN, time_limit_s=None
    )
    return compiler.compile(circuit).circuit


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
@pytest.mark.parametrize("seed", [11, 29])
def test_trajectory_counts_exactly_equal(device_name, seed):
    device = DEVICES[device_name]
    compiled = _compiled_random(device, seed)
    # Fewer trials on the wide devices: the scalar reference simulates
    # a 2**14/2**16 statevector per distinct fault configuration.
    trials = 120 if device.num_qubits <= 8 else 50
    batched = sample_counts(compiled, device, trials=trials, seed=2024)
    reference = _reference_sample_counts(
        compiled, device, trials=trials, seed=2024
    )
    assert batched == reference
    assert sum(batched.values()) == trials


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
@pytest.mark.parametrize("noise_aware", [True, False])
def test_reliability_matrices_equivalent(device_name, noise_aware):
    device = DEVICES[device_name]
    for day in (0, 3):
        fast = compute_reliability(device, noise_aware=noise_aware, day=day)
        slow = _reference_compute_reliability(
            device, noise_aware=noise_aware, day=day
        )
        assert np.allclose(fast.matrix, slow.matrix)
        assert np.allclose(fast.swap_reliability, slow.swap_reliability)
        assert np.allclose(fast.gate_reliability, slow.gate_reliability)
        assert np.allclose(fast.readout, slow.readout)
        # Tiebreaks drive swap routing; they must match exactly.
        assert np.array_equal(fast.next_hop, slow.next_hop)


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
def test_warm_hint_preserves_mapper_objective(device_name):
    device = DEVICES[device_name]
    rng = random.Random(97)
    circuit = random_circuit(rng, 3, 10, name="eqv-map")
    from repro.ir.decompose import decompose_to_basis

    decomposed = decompose_to_basis(circuit)
    reliability = compute_reliability(device)
    cold = smt_mapping(decomposed, device, reliability, time_limit_s=None)
    warm = smt_mapping(
        decomposed,
        device,
        reliability,
        time_limit_s=None,
        warm_hint=cold.placement,
    )
    assert warm.objective == cold.objective
    assert warm.placement == cold.placement


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
def test_cross_day_warm_hint_identical_placement(device_name):
    """A hint solved against *another* day's calibration — the case the
    compile cache actually produces — must leave the placement
    bit-identical to a cold solve, or sweep results would depend on
    cache state."""
    device = DEVICES[device_name]
    rng = random.Random(53)
    circuit = random_circuit(rng, 3, 10, name="eqv-map-day")
    from repro.ir.decompose import decompose_to_basis

    decomposed = decompose_to_basis(circuit)
    hint = smt_mapping(
        decomposed,
        device,
        compute_reliability(device, day=3),
        time_limit_s=None,
    ).placement
    today = compute_reliability(device, day=0)
    cold = smt_mapping(decomposed, device, today, time_limit_s=None)
    warm = smt_mapping(
        decomposed, device, today, time_limit_s=None, warm_hint=hint
    )
    assert warm.placement == cold.placement
    assert warm.objective == cold.objective
    assert warm.degraded == cold.degraded


@pytest.mark.parametrize("device_name", ["IBM Q5 Tenerife", "Rigetti Agave"])
def test_success_estimate_bitwise_equal(device_name):
    device = DEVICES[device_name]
    compiled = _compiled_random(device, 5)
    from repro.sim.statevector import measurement_wiring

    wiring = measurement_wiring(compiled)
    correct = "0" * (max(cbit for _, cbit in wiring) + 1)
    batched = monte_carlo_success_rate(
        compiled, device, correct, fault_samples=120, seed=1234
    )
    reference = _reference_monte_carlo_success_rate(
        compiled, device, correct, fault_samples=120, seed=1234
    )
    assert batched.success_rate.hex() == reference.success_rate.hex()


def test_reference_paths_importable():
    """The legacy implementations stay importable under ``_reference_*``
    so the differential suite (and ``repro bench``) can always reach
    them."""
    from repro.compiler.reliability import (
        _reference_compute_reliability,
        _reference_end_to_end_matrix,
        _reference_floyd_warshall,
    )
    from repro.sim.success import _reference_monte_carlo_success_rate
    from repro.sim.trajectories import _reference_sample_counts

    for fn in (
        _reference_compute_reliability,
        _reference_end_to_end_matrix,
        _reference_floyd_warshall,
        _reference_monte_carlo_success_rate,
        _reference_sample_counts,
    ):
        assert callable(fn)

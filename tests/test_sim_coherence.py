"""Tests for the optional coherence-limit model."""

import math

import pytest

from tests.helpers import make_noiseless_device
from repro.devices import Topology, ibmq14_melbourne, umd_trapped_ion
from repro.ir import Circuit
from repro.programs import bernstein_vazirani
from repro.sim import (
    coherence_survival,
    estimated_success_probability,
    monte_carlo_success_rate,
)


class TestCoherenceSurvival:
    def test_formula(self):
        device = ibmq14_melbourne()
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        expected = math.exp(
            -circuit.depth() * device.gate_time_us / device.coherence_time_us
        )
        assert coherence_survival(circuit, device) == pytest.approx(expected)

    def test_umdti_effectively_unlimited(self):
        # 1.5 s coherence vs microsecond-scale programs (paper Fig. 1).
        device = umd_trapped_ion()
        circuit, _ = bernstein_vazirani(5)
        assert coherence_survival(circuit, device) > 0.99

    def test_deeper_circuits_survive_less(self):
        device = ibmq14_melbourne()
        shallow = Circuit(2).cx(0, 1).measure_all()
        deep = Circuit(2)
        for _ in range(50):
            deep.cx(0, 1)
        deep.measure_all()
        assert coherence_survival(deep, device) < coherence_survival(
            shallow, device
        )


class TestCoherenceInEstimators:
    def test_esp_reduced_when_enabled(self):
        device = ibmq14_melbourne()
        circuit = Circuit(2).x(0).cx(0, 1).measure_all()
        without = estimated_success_probability(circuit, device, "11")
        with_coherence = estimated_success_probability(
            circuit, device, "11", include_coherence=True
        )
        assert with_coherence < without

    def test_mc_mixes_toward_uniform(self):
        # On an otherwise noiseless device with terrible coherence the
        # success rate approaches the survival-weighted mix.
        device = make_noiseless_device(Topology.line(2))
        device.coherence_time_us = 1.0
        device.gate_time_us = 1.0
        circuit = Circuit(2).x(0).cx(0, 1).measure_all()
        estimate = monte_carlo_success_rate(
            circuit, device, "11", fault_samples=10, include_coherence=True
        )
        survival = coherence_survival(circuit, device)
        expected = survival * 1.0 + (1 - survival) * 0.25
        assert estimate.success_rate == pytest.approx(expected, abs=1e-3)

    def test_default_excludes_coherence(self):
        device = make_noiseless_device(Topology.line(2))
        device.coherence_time_us = 1.0
        device.gate_time_us = 1.0
        circuit = Circuit(2).x(0).cx(0, 1).measure_all()
        estimate = monte_carlo_success_rate(
            circuit, device, "11", fault_samples=10
        )
        assert estimate.success_rate == pytest.approx(1.0, abs=1e-3)

"""Pass contracts: stage checks, modes, fault injection, plumbing."""

import dataclasses
import math

import pytest

from repro.compiler import OptimizationLevel, TriQCompiler
from repro.compiler.mapping import InitialMapping, default_mapping
from repro.compiler.reliability import compute_reliability
from repro.compiler.routing import route_circuit
from repro.contracts import (
    CONTRACT_FAULT_ENV,
    ContractError,
    ContractMode,
    ContractRecorder,
    MappingContractError,
    OneQubitContractError,
    RoutingContractError,
    SchedulingContractError,
    SemanticsContractError,
    TranslationContractError,
    check_codegen,
    check_mapping,
    check_onequbit,
    check_routing,
    check_scheduling,
    check_semantics,
    check_translation,
    compact_circuit,
)
from repro.contracts.errors import ERROR_CODES, CodegenParseError
from repro.devices import ibmq5_tenerife, rigetti_agave, umd_trapped_ion
from repro.ir import Circuit
from repro.ir.decompose import decompose_to_basis
from repro.ir.instruction import Instruction
from repro.programs import bernstein_vazirani

INJECTABLE_STAGES = (
    "mapping", "routing", "scheduling", "translate", "onequbit", "codegen",
)


def bell():
    return Circuit(2).h(0).cx(0, 1).measure_all()


def routed(circuit, device):
    return route_circuit(
        circuit,
        device,
        default_mapping(circuit, device),
        compute_reliability(device),
    )


class TestContractMode:
    def test_coerce(self):
        assert ContractMode.coerce(None) is ContractMode.OFF
        assert ContractMode.coerce("strict") is ContractMode.STRICT
        assert ContractMode.coerce("WARN") is ContractMode.WARN
        assert ContractMode.coerce(ContractMode.OFF) is ContractMode.OFF

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="contract mode"):
            ContractMode.coerce("loose")

    def test_enabled(self):
        assert ContractMode.STRICT.enabled
        assert ContractMode.WARN.enabled
        assert not ContractMode.OFF.enabled

    def test_off_never_invokes_check(self):
        recorder = ContractRecorder(ContractMode.OFF)
        calls = []
        recorder.run(lambda: calls.append(1))
        assert calls == [] and recorder.violations == []

    def test_strict_propagates(self):
        recorder = ContractRecorder(ContractMode.STRICT)

        def boom():
            raise MappingContractError("bad placement")

        with pytest.raises(MappingContractError):
            recorder.run(boom)

    def test_warn_records_summary(self):
        recorder = ContractRecorder(ContractMode.WARN)

        def boom():
            raise MappingContractError("bad placement")

        recorder.run(boom)
        assert recorder.violations == ["MAP001 mapping: bad placement"]


class TestErrorHierarchy:
    def test_codes_are_stable(self):
        for code, cls in ERROR_CODES.items():
            assert cls("x").code == code

    def test_dual_inheritance_keeps_valueerror(self):
        # Pre-contract callers catching ValueError must keep working.
        assert issubclass(MappingContractError, ValueError)
        assert issubclass(TranslationContractError, ValueError)
        assert issubclass(CodegenParseError, ValueError)

    def test_describe_carries_context(self):
        err = TranslationContractError(
            "gate 'h' is not software-visible",
            device="IBM Q5 Tenerife",
            instruction="h (0,)",
            qubits=(0,),
            hint="translate before emitting",
        )
        text = err.describe()
        assert "TRANS001" in text
        assert "IBM Q5 Tenerife" in text
        assert "h (0,)" in text
        assert "translate before emitting" in text


class TestStageChecks:
    def test_clean_mapping_passes(self):
        device = ibmq5_tenerife()
        circuit = bell()
        check_mapping(default_mapping(circuit, device), circuit, device)

    def test_mapping_wrong_length(self):
        device = ibmq5_tenerife()
        mapping = InitialMapping((0,), device.num_qubits)
        with pytest.raises(MappingContractError, match="1 entries"):
            check_mapping(mapping, bell(), device)

    def test_clean_routing_and_scheduling_pass(self):
        device = ibmq5_tenerife()
        circuit = decompose_to_basis(bernstein_vazirani(4)[0])
        result = routed(circuit, device)
        check_routing(result, device)
        check_scheduling(circuit, result, device)

    def test_routing_swap_count_lie(self):
        device = ibmq5_tenerife()
        circuit = decompose_to_basis(bernstein_vazirani(4)[0])
        result = routed(circuit, device)
        lied = dataclasses.replace(result, num_swaps=result.num_swaps + 1)
        with pytest.raises(RoutingContractError, match="swaps"):
            check_routing(lied, device)

    def test_scheduling_dropped_instruction(self):
        device = ibmq5_tenerife()
        circuit = decompose_to_basis(bell())
        result = routed(circuit, device)
        pruned = Circuit(
            result.circuit.num_qubits,
            instructions=list(result.circuit.instructions)[1:],
        )
        broken = dataclasses.replace(result, circuit=pruned)
        with pytest.raises(SchedulingContractError, match="stream changed"):
            check_scheduling(circuit, broken, device)

    def test_translation_rejects_foreign_gate(self):
        device = ibmq5_tenerife()
        with pytest.raises(TranslationContractError, match="software-visible"):
            check_translation(Circuit(2).h(0), device)

    def test_onequbit_perturbed_rotation(self):
        device = rigetti_agave()
        before = Circuit(2)
        before.add("rx", (0,), (0.5,))
        before.cx(0, 1)
        after = Circuit(2)
        after.add("rx", (0,), (0.8,))
        after.cx(0, 1)
        with pytest.raises(OneQubitContractError, match="changed unitary"):
            check_onequbit(before, after, device)

    def test_codegen_roundtrip_all_vendors(self):
        for device in (ibmq5_tenerife(), rigetti_agave(), umd_trapped_ion()):
            program = TriQCompiler(device).compile(bell())
            check_codegen(program.circuit, device)

    def test_semantics_divergence(self):
        device = umd_trapped_ion()
        source = bell()
        wrong = Circuit(2).x(0).measure_all()
        with pytest.raises(SemanticsContractError, match="diverged"):
            check_semantics(decompose_to_basis(source), wrong, device)

    def test_semantics_skips_unmeasured(self):
        device = umd_trapped_ion()
        check_semantics(Circuit(2).h(0), Circuit(2).x(0), device)

    def test_compact_circuit_preserves_wiring(self):
        circuit = Circuit(5)
        circuit.x(3)
        circuit.measure(3, 0)
        compact = compact_circuit(circuit)
        assert compact.num_qubits == 1
        assert compact.instructions[1] == Instruction(
            "measure", (0,), (), (0,)
        )


class TestPipelineIntegration:
    @pytest.mark.parametrize("device_fn", [
        ibmq5_tenerife, rigetti_agave, umd_trapped_ion,
    ])
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_strict_clean_compiles(self, device_fn, level):
        device = device_fn()
        program = TriQCompiler(
            device, level=level, contracts="strict"
        ).compile(bernstein_vazirani(4)[0])
        assert program.contract_violations == ()

    @pytest.mark.parametrize("stage", INJECTABLE_STAGES)
    def test_injected_fault_caught_strict(self, stage, monkeypatch):
        monkeypatch.setenv(CONTRACT_FAULT_ENV, stage)
        device = ibmq5_tenerife()
        with pytest.raises(ContractError):
            TriQCompiler(device, contracts="strict").compile(
                bernstein_vazirani(4)[0]
            )

    @pytest.mark.parametrize("stage", INJECTABLE_STAGES)
    def test_injected_fault_recorded_warn(self, stage, monkeypatch):
        monkeypatch.setenv(CONTRACT_FAULT_ENV, stage)
        device = ibmq5_tenerife()
        program = TriQCompiler(device, contracts="warn").compile(
            bernstein_vazirani(4)[0]
        )
        assert program.contract_violations

    def test_off_mode_ignores_injection(self, monkeypatch):
        monkeypatch.setenv(CONTRACT_FAULT_ENV, "onequbit")
        device = ibmq5_tenerife()
        program = TriQCompiler(device).compile(bernstein_vazirani(4)[0])
        assert program.contract_violations == ()

    def test_payload_roundtrip_keeps_violations(self):
        device = ibmq5_tenerife()
        program = TriQCompiler(device).compile(bell())
        stamped = dataclasses.replace(
            program, contract_violations=("MAP001 mapping: synthetic",)
        )
        payload = stamped.to_payload()
        from repro.compiler import CompiledProgram

        restored = CompiledProgram.from_payload(payload, device)
        assert restored.contract_violations == (
            "MAP001 mapping: synthetic",
        )

    def test_old_payload_without_violations_loads(self):
        device = ibmq5_tenerife()
        program = TriQCompiler(device).compile(bell())
        payload = program.to_payload()
        payload.pop("contract_violations")
        from repro.compiler import CompiledProgram

        restored = CompiledProgram.from_payload(payload, device)
        assert restored.contract_violations == ()


class TestRunnerIntegration:
    def test_baselines_get_posthoc_checks(self, monkeypatch):
        from repro.experiments.runner import compile_with
        from repro.programs import benchmark_by_name

        circuit, _ = benchmark_by_name("BV4").build()
        device = ibmq5_tenerife()
        clean = compile_with(circuit, device, "qiskit", contracts="warn")
        assert clean.contract_violations == ()
        monkeypatch.setenv(CONTRACT_FAULT_ENV, "codegen")
        faulted = compile_with(circuit, device, "qiskit", contracts="warn")
        assert any("CODEGEN" in v for v in faulted.contract_violations)

    def test_sweep_warn_records_violations(self, monkeypatch):
        from repro.experiments.parallel import run_sweep

        monkeypatch.setenv(CONTRACT_FAULT_ENV, "onequbit")
        report = run_sweep(
            rigetti_agave(),
            [OptimizationLevel.OPT_1Q],
            benchmarks=["BV4"],
            with_success=False,
            contracts="warn",
        )
        assert report.measurements[0].contract_violations
        assert not report.failures

    def test_sweep_strict_turns_violation_into_failure(self, monkeypatch):
        from repro.experiments.parallel import run_sweep

        monkeypatch.setenv(CONTRACT_FAULT_ENV, "onequbit")
        report = run_sweep(
            rigetti_agave(),
            [OptimizationLevel.OPT_1Q],
            benchmarks=["BV4"],
            with_success=False,
            contracts="strict",
        )
        assert report.failures
        assert report.failures[0].error_type == "OneQubitContractError"

    def test_off_mode_task_digest_unchanged(self):
        # Journals written before the contracts layer must still resume.
        from repro.cache.keys import digest
        from repro.experiments.journal import task_digest
        from repro.experiments.parallel import SweepTask

        task = SweepTask(
            benchmark="BV4", device="IBM Q5 Tenerife", day=0,
            compiler="TriQ-1QOptCN", fault_samples=100, with_success=True,
            compile_seed=0, mc_seed=1234,
        )
        # The mapper field (added later) is likewise digest-invisible
        # at its default, so pre-portfolio journals also still resume.
        legacy = {
            k: v
            for k, v in dataclasses.asdict(task).items()
            if k not in ("contracts", "mapper")
        }
        assert task_digest(task) == digest("sweep-cell", legacy)

    def test_cache_key_stable_when_contracts_off(self, tmp_path):
        from repro.cache import open_cache
        from repro.experiments.runner import compile_with_cache
        from repro.programs import benchmark_by_name

        circuit, _ = benchmark_by_name("BV4").build()
        device = ibmq5_tenerife()
        cache = open_cache(tmp_path)
        _, hit = compile_with_cache(circuit, device,
                                    OptimizationLevel.OPT_1QCN, cache=cache)
        assert hit is False
        # Off-mode (default) recompile hits the same artifact; an
        # enabled mode takes a distinct key.
        _, hit = compile_with_cache(circuit, device,
                                    OptimizationLevel.OPT_1QCN, cache=cache)
        assert hit is True
        _, hit = compile_with_cache(
            circuit, device, OptimizationLevel.OPT_1QCN, cache=cache,
            contracts="strict",
        )
        assert hit is False

"""Tests for the distributed sweep layer (ISSUE 7).

Covers the worker-fleet spec parser, the sharded cache, the wire
protocol, the coordinator's lease state machine driven directly, and —
the heart of it — an in-process chaos matrix: coordinator kill with
durable resume, worker partition with exactly-once re-lease and
duplicate suppression, and graceful degradation to the in-process
engine.  The invariant under test throughout: a distributed run's
results are byte-identical to a single-machine run of the same
specification, no matter which processes die along the way.

The end-to-end tests boot a real coordinator (asyncio HTTP on an
ephemeral port) on the main thread and attach :func:`run_worker` loops
on background threads — the exact worker code path ``repro work``
runs, minus the process boundary, so the chaos matrix stays fast
enough for tier-1.
"""

import threading
import time
from dataclasses import replace

import pytest

from repro.cache import CompileCache, ShardedCache, activate_cache, open_cache
from repro.compiler import OptimizationLevel
from repro.experiments.distributed import (
    DistributedSweep,
    WorkerFleet,
    parse_workers_from,
    run_distributed_sweep,
    run_worker,
    sweep_status,
)
from repro.experiments.distributed.protocol import (
    CoordinatorUnreachable,
    call,
    task_from_wire,
    task_to_wire,
)
from repro.experiments.faults import (
    FAULT_INJECT_ENV,
    InjectedCoordinatorDeath,
    RetryPolicy,
)
from repro.experiments.journal import task_digest
from repro.experiments.parallel import TaskReport, run_sweep
from repro.experiments.plan import (
    SweepTask,
    build_sweep_plan,
    replay_journal,
)
from repro.experiments.runner import Measurement

LEVELS = [OptimizationLevel.OPT_1QCN]
BENCHES = ["BV4", "Toffoli"]
FAULT_SAMPLES = 3


# ----------------------------------------------------------------------
# Worker fleet specification
# ----------------------------------------------------------------------
class TestParseWorkersFrom:
    def test_local_counts(self):
        fleet = parse_workers_from("local:2")
        assert fleet.local == 2 and fleet.remote_hosts == []

    def test_mixed_entries(self):
        fleet = parse_workers_from("local,local:3,node-a , node-b")
        assert fleet.local == 4
        assert fleet.remote_hosts == ["node-a", "node-b"]

    def test_hosts_file(self, tmp_path):
        hosts = tmp_path / "hosts"
        hosts.write_text(
            "local:2\n# a comment\nnode-a\n\nnode-b # gpu box\n",
            encoding="utf-8",
        )
        fleet = parse_workers_from(str(hosts))
        assert fleet.local == 2
        assert fleet.remote_hosts == ["node-a", "node-b"]

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            parse_workers_from("local:nope")
        with pytest.raises(ValueError):
            parse_workers_from("local:-1")
        with pytest.raises(ValueError):
            parse_workers_from("/no/such/hosts-file")

    def test_sequence_form(self):
        fleet = parse_workers_from(["local:1", "node-a"])
        assert fleet.local == 1 and fleet.remote_hosts == ["node-a"]


# ----------------------------------------------------------------------
# Sharded cache
# ----------------------------------------------------------------------
class TestShardedCache:
    def test_put_visible_in_shard_and_shared(self, tmp_path):
        cache = ShardedCache(tmp_path, "w1")
        cache.put("k", {"value": 1})
        assert cache.get("k") == {"value": 1}
        # Write-through: a plain handle on the shared root sees it too.
        assert CompileCache(tmp_path).get("k") == {"value": 1}

    def test_read_through_promotes_shared_hits(self, tmp_path):
        CompileCache(tmp_path).put("k", {"value": 2})
        cache = ShardedCache(tmp_path, "w1")
        assert cache.get("k") == {"value": 2}
        # Promoted: the private shard now holds its own copy.
        assert cache.shard.get("k") == {"value": 2}

    def test_shards_are_isolated_but_share(self, tmp_path):
        a = ShardedCache(tmp_path, "a")
        b = ShardedCache(tmp_path, "b")
        a.put("k", {"value": 3})
        assert b.shard.get("k") is None  # not in b's private shard...
        assert b.get("k") == {"value": 3}  # ...but via the shared root

    def test_namespace_validation(self, tmp_path):
        for bad in ("a/b", "a\\b", "..", ""):
            with pytest.raises(ValueError):
                ShardedCache(tmp_path, bad)

    def test_root_is_shared_root(self, tmp_path):
        cache = ShardedCache(tmp_path, "w1")
        assert cache.root == CompileCache(tmp_path).root

    def test_miss_returns_none(self, tmp_path):
        assert ShardedCache(tmp_path, "w1").get("absent") is None


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_task_wire_roundtrip(self):
        task = SweepTask(
            benchmark="BV4", device="ibmq5 tenerife", day=0,
            compiler="TriQ-1QOptCN", fault_samples=3, with_success=True,
            compile_seed=0, mc_seed=1234,
        )
        assert task_from_wire(task_to_wire(task)) == task
        assert task_digest(task_from_wire(task_to_wire(task))) == (
            task_digest(task)
        )

    def test_unreachable_coordinator_raises(self):
        with pytest.raises(CoordinatorUnreachable):
            call("http://127.0.0.1:9", "/healthz", timeout_s=2.0)


# ----------------------------------------------------------------------
# Coordinator state machine, driven directly (no HTTP)
# ----------------------------------------------------------------------
def _state(tmp_path, lease_ttl_s=30.0, retries=0, benchmarks=("BV4",)):
    from repro.experiments.distributed.coordinator import CoordinatorState

    plan = build_sweep_plan(
        "tenerife", LEVELS, benchmarks=list(benchmarks),
        fault_samples=FAULT_SAMPLES, with_success=False,
        journal_dir=tmp_path, run_id="state-test",
    )
    journal = plan.open_journal()
    state = CoordinatorState(
        plan, journal,
        RetryPolicy(retries=retries, backoff_s=0.01),
        lease_ttl_s=lease_ttl_s,
    )
    state.enqueue_unfinished()
    return state


class TestCoordinatorState:
    def test_duplicate_completion_journaled_once(self, tmp_path):
        state = _state(tmp_path)
        grant = state.grant("w1")
        digest = grant["digest"]
        first = state.complete("w1", digest, 1, {"m": 1}, {"r": 1})
        again = state.complete("w2", digest, 1, {"m": 1}, {"r": 1})
        assert first == {"accepted": True, "duplicate": False}
        assert again["duplicate"] is True and again["accepted"] is False
        assert state.duplicates == 1
        state.journal.close()
        assert len(state.journal.records()) == 1  # journaled exactly once

    def test_forced_lease_expiry_fires_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "lease-expiry:BV4")
        state = _state(tmp_path, lease_ttl_s=60.0)
        assert state.grant("w1") is not None
        assert state.expire_due_leases() == 1  # forced despite the long TTL
        regrant = state.grant("w2")
        assert regrant["attempt"] == 2
        assert state.expire_due_leases() == 0  # the fault fires once per cell

    def test_requeue_limit_becomes_lease_expired_failure(self, tmp_path):
        state = _state(tmp_path, lease_ttl_s=0.0)
        for _ in range(state.requeue_limit):
            assert state.grant(f"w") is not None
            assert state.expire_due_leases() == 1
        assert state.grant("w") is not None
        assert state.expire_due_leases() == 1  # one past the limit: give up
        assert state.done
        assert len(state.failures) == 1
        assert state.failures[0].kind == "lease-expired"

    def test_error_retry_backoff_then_regrant(self, tmp_path):
        state = _state(tmp_path, retries=1)
        grant = state.grant("w1")
        outcome = state.fail(
            "w1", grant["digest"], 1, "ValueError", "boom", "tb"
        )
        assert outcome["requeued"] is True
        time.sleep(0.05)  # past the deterministic backoff (~0.01s)
        regrant = state.grant("w1")
        assert regrant is not None and regrant["attempt"] == 2
        final = state.fail(
            "w1", grant["digest"], 2, "ValueError", "boom", "tb"
        )
        assert final["requeued"] is False
        assert state.failures[0].kind == "error"

    def test_snapshot_feeds_sweep_status(self, tmp_path):
        state = _state(tmp_path)
        state.state_path = tmp_path / "state-test.state.json"
        state.touch_worker("w1")  # the HTTP layer does this per request
        state.grant("w1")
        state.write_state()
        status = sweep_status("state-test", journal_dir=tmp_path)
        assert status.total == 1
        assert status.done == 0
        assert status.leased == 1
        assert "w1" in status.worker_heartbeat_age_s
        assert "state-test" in status.describe()

    def test_heartbeat_renews_only_the_owner(self, tmp_path):
        state = _state(tmp_path, lease_ttl_s=5.0)
        grant = state.grant("w1")
        assert state.heartbeat("w1", grant["digest"]) is True
        assert state.heartbeat("thief", grant["digest"]) is False
        assert state.heartbeat("w1", "no-such-digest") is False


# ----------------------------------------------------------------------
# End-to-end chaos matrix (in-process coordinator + worker threads)
# ----------------------------------------------------------------------
def _canonical(measurements):
    """Measurements with cache provenance masked.

    ``cache_hit`` records *where* a result came from (fresh compile vs.
    cache), not *what* it is; the byte-identity invariant is about the
    payload, so comparisons normalize it.
    """
    return [replace(m, cache_hit=False) for m in measurements]



@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A shared cache warmed by the serial baseline every test compares to.

    Warm measurements are the point: cache hits restore identical
    payloads, so byte-for-byte equality between execution modes is a
    meaningful assertion rather than a timing accident.
    """
    import os

    os.environ.pop(FAULT_INJECT_ENV, None)
    root = tmp_path_factory.mktemp("dist-cache")
    cache = open_cache(root)
    baseline = run_sweep(
        "tenerife", LEVELS, benchmarks=BENCHES,
        fault_samples=FAULT_SAMPLES, with_success=True,
        cache=cache, run_id="baseline", workers=1,
    )
    assert not baseline.failures
    return cache, baseline


def _distributed(
    cache,
    run_id,
    workers=1,
    resume=False,
    lease_ttl_s=10.0,
    worker_max_failures=10,
):
    """One in-process distributed run; workers ride background threads."""
    plan = build_sweep_plan(
        "tenerife", LEVELS, benchmarks=BENCHES,
        fault_samples=FAULT_SAMPLES, with_success=True,
        cache=cache, run_id=run_id,
    )
    journal = plan.open_journal()
    sweep = DistributedSweep(
        plan, journal, RetryPolicy(backoff_s=0.01), WorkerFleet(),
        cache=cache, lease_ttl_s=lease_ttl_s, worker_wait_s=30.0,
        spawn_local=False,
    )
    resumed = 0
    if resume:
        prefill, resumed = replay_journal(
            journal, plan.digests, Measurement, TaskReport
        )
        sweep.state.prefill(prefill)
    else:
        journal.reset()
    sweep.state.enqueue_unfinished()

    codes = {}
    threads = []
    for slot in range(workers):
        def _work(slot=slot):
            sweep.ready.wait(timeout=60)
            if sweep.url is not None:
                codes[slot] = run_worker(
                    sweep.url,
                    cache_dir=cache.root,
                    worker_id=f"w{slot}",
                    poll_s=0.02,
                    max_connection_failures=worker_max_failures,
                )
        thread = threading.Thread(target=_work, daemon=True)
        thread.start()
        threads.append(thread)

    started = time.perf_counter()
    error = None
    try:
        sweep.run()
    except InjectedCoordinatorDeath as exc:
        error = exc
    finally:
        for thread in threads:
            thread.join(timeout=60)
        activate_cache(None)  # worker threads activated their shards
    report = (
        None if error is not None
        else sweep.assemble_report(started, resumed)
    )
    return sweep, report, codes, error


class TestDistributedEndToEnd:
    def test_clean_run_matches_serial(self, warm):
        cache, baseline = warm
        sweep, report, codes, error = _distributed(cache, "clean-run")
        assert error is None
        assert all(code == 0 for code in codes.values())
        assert report.mode == "distributed"
        assert not report.failures
        assert report.run_id == "clean-run"
        # The invariant: byte-identical measurements, same cell digests.
        assert _canonical(report.measurements) == _canonical(baseline.measurements)
        journal = sweep.plan.open_journal()
        assert set(journal.load()) == set(sweep.plan.digests)
        # Coordinator counters surface through the merged report metrics.
        exposition = report.metrics.render_prometheus()
        assert "repro_dist_leases_total" in exposition
        assert "repro_dist_completions_total" in exposition

    def test_coordinator_kill_then_resume_is_byte_identical(
        self, warm, monkeypatch
    ):
        cache, baseline = warm
        # Phase 1: the coordinator dies right after fsyncing its first
        # completion — after the journal write, before the next grant.
        monkeypatch.setenv(FAULT_INJECT_ENV, "coordinator-kill:1")
        sweep, report, codes, error = _distributed(cache, "chaos-kill")
        assert isinstance(error, InjectedCoordinatorDeath)
        assert report is None
        journal = sweep.plan.open_journal()
        survived = journal.load()
        assert len(survived) == 1  # the fsynced cell survived the kill

        # Phase 2: a fresh coordinator resumes the same run id.
        monkeypatch.delenv(FAULT_INJECT_ENV)
        sweep2, report2, codes2, error2 = _distributed(
            cache, "chaos-kill", resume=True
        )
        assert error2 is None
        assert report2.resumed == 1
        assert not report2.failures
        assert _canonical(report2.measurements) == _canonical(baseline.measurements)
        # No cell was executed-and-counted twice: one journal record
        # per cell across both coordinator lifetimes.
        records = sweep2.plan.open_journal().records()
        digests = [record["task"] for record in records]
        assert sorted(digests) == sorted(sweep2.plan.digests)

    def test_worker_partition_re_leases_once(self, warm, monkeypatch):
        cache, baseline = warm
        # BV4's first owner goes silent (no heartbeats, completion
        # delayed past the TTL); the lease must expire exactly once, a
        # second worker must steal the cell, and the report must still
        # be byte-identical with each digest journaled exactly once.
        monkeypatch.setenv(FAULT_INJECT_ENV, "worker-partition:BV4")
        sweep, report, codes, error = _distributed(
            cache, "chaos-partition", workers=2, lease_ttl_s=0.4,
        )
        assert error is None
        assert not report.failures
        assert _canonical(report.measurements) == _canonical(baseline.measurements)
        state = sweep.state
        bv4 = [
            index for index, task in enumerate(sweep.plan.tasks)
            if task.benchmark == "BV4"
        ]
        assert state.expiry_requeues == {bv4[0]: 1}  # exactly one re-lease
        journal = sweep.plan.open_journal()
        assert sorted(r["task"] for r in journal.records()) == (
            sorted(sweep.plan.digests)
        )

    def test_partition_heal_dedups_over_http(self, tmp_path):
        """The full partition-heal ordering, driven deterministically.

        w1 leases a cell and goes silent; the lease expires and w2
        steals it; w1's completion arrives first when the partition
        heals (its work is *kept* — first writer wins); w2's later
        completion for the same digest is dropped as a duplicate.
        """
        plan = build_sweep_plan(
            "tenerife", LEVELS, benchmarks=BENCHES,
            fault_samples=FAULT_SAMPLES, with_success=False,
            journal_dir=tmp_path, run_id="manual-heal",
        )
        sweep = DistributedSweep(
            plan, plan.open_journal(), RetryPolicy(backoff_s=0.01),
            WorkerFleet(), lease_ttl_s=0.3, worker_wait_s=30.0,
            spawn_local=False,
        )
        sweep.state.enqueue_unfinished()
        runner = threading.Thread(target=sweep.run, daemon=True)
        runner.start()
        try:
            assert sweep.ready.wait(timeout=30)
            url = sweep.url
            fake = {"placeholder": True}
            lease1 = call(url, "/v1/lease", {"worker": "w1"})
            digest = lease1["digest"]
            # w2 drains the other cell while w1 is "partitioned".
            other = call(url, "/v1/lease", {"worker": "w2"})
            assert other["digest"] != digest
            call(url, "/v1/complete", {
                "worker": "w2", "digest": other["digest"], "attempt": 1,
                "measurement": fake, "report": fake,
            })
            # No heartbeats from w1: poll until the expiry sweeper
            # requeues its cell and w2 steals it.
            deadline = time.monotonic() + 15
            stolen = None
            while time.monotonic() < deadline:
                lease = call(url, "/v1/lease", {"worker": "w2"})
                if lease.get("task") is not None:
                    stolen = lease
                    break
                time.sleep(0.05)
            assert stolen is not None, "lease never expired"
            assert stolen["digest"] == digest and stolen["attempt"] == 2
            # Partition heals: w1's original completion lands first.
            healed = call(url, "/v1/complete", {
                "worker": "w1", "digest": digest, "attempt": 1,
                "measurement": fake, "report": fake,
            })
            assert healed["accepted"] is True
            # The thief finishes too: dropped as a duplicate.
            late = call(url, "/v1/complete", {
                "worker": "w2", "digest": digest, "attempt": 2,
                "measurement": fake, "report": fake,
            })
            assert late["accepted"] is False and late["duplicate"] is True
            assert late["done"] is True
        finally:
            runner.join(timeout=30)
        assert not runner.is_alive()
        assert sweep.state.duplicates == 1
        records = plan.open_journal().records()
        assert sorted(r["task"] for r in records) == sorted(plan.digests)

    def test_zero_workers_degrades_with_reason(self, warm):
        cache, baseline = warm
        report = run_distributed_sweep(
            "tenerife", LEVELS, benchmarks=BENCHES,
            fault_samples=FAULT_SAMPLES, with_success=True,
            workers_from="", cache=cache, run_id="no-workers",
            worker_wait_s=0.3, spawn_local=False,
        )
        assert report.fallback_reason is not None
        assert "no worker contacted" in report.fallback_reason
        assert _canonical(report.measurements) == _canonical(baseline.measurements)
        assert not report.failures

    def test_no_journal_degrades_with_reason(self):
        report = run_distributed_sweep(
            "tenerife", LEVELS, benchmarks=["BV4"],
            fault_samples=FAULT_SAMPLES, with_success=False,
            workers_from="local:1", cache=None, spawn_local=False,
            worker_wait_s=0.3,
        )
        assert report.fallback_reason is not None
        assert "durable journal" in report.fallback_reason
        assert len(report.measurements) == 1

    def test_status_of_finished_run(self, warm):
        cache, _ = warm
        journal_dir = cache.root / "journals"
        status = sweep_status("clean-run", journal_dir=journal_dir)
        assert status.done == status.total == len(BENCHES)
        assert status.leased == 0
        description = status.describe()
        assert "clean-run" in description and "2/2" in description

    def test_status_of_unknown_run(self, tmp_path):
        status = sweep_status("never-ran", journal_dir=tmp_path)
        assert status.done == 0 and status.total is None
        assert "never-ran" in status.describe()

"""Unit tests for the fixed-point optimization pass manager.

Covers each pass in isolation (state compression, commuting
cancellation, block resynthesis, 1Q coalescing), the manager's
fixed-point loop and cost accounting, the OPT### contract wiring
(distribution preservation, 2Q monotonicity, convergence guard), and
the OPT004 construction-time diagnostic for ``commute=True`` at a level
without 1Q optimization.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.compiler import OptimizationLevel, TriQCompiler
from repro.compiler.passes import (
    DEFAULT_MAX_ITERATIONS,
    OPT_PRESETS,
    PRESET_PIPELINES,
    CircuitPass,
    PassManager,
    build_pass_manager,
    cancel_commuting_gates,
    coalesce_rotations,
    compress_initial_state,
    preset_passes,
    resynthesize_blocks,
    validate_preset,
)
from repro.contracts.errors import (
    ERROR_CODES,
    OptimizationConfigError,
    PassConvergenceError,
    PassDistributionError,
    PassMonotonicityError,
)
from repro.contracts.mode import ContractMode, ContractRecorder
from repro.devices import device_by_name
from repro.ir.circuit import Circuit
from repro.sim.statevector import circuit_unitary, ideal_distribution
from repro.verify import distribution_distance


def _names(circuit: Circuit):
    return [inst.name for inst in circuit]


def _assert_same_distribution(before: Circuit, after: Circuit):
    assert (
        distribution_distance(
            ideal_distribution(before), ideal_distribution(after)
        )
        < 1e-9
    )


def _assert_same_unitary(before: Circuit, after: Circuit):
    u, v = circuit_unitary(before), circuit_unitary(after)
    phase = v.conj().T @ u
    scale = phase[np.unravel_index(np.argmax(np.abs(phase)), phase.shape)]
    assert abs(abs(scale) - 1.0) < 1e-8
    assert np.allclose(u, scale * v, atol=1e-8)


class TestStateCompression:
    def test_drops_trivial_prefix_gates(self):
        c = Circuit(3)
        c.add("z", (0,))        # diagonal on |0>: global phase
        c.add("rz", (1,), (0.7,))
        c.add("cx", (0, 1))     # |0> control: identity
        c.add("cz", (0, 2))     # one operand |0>: identity
        c.add("h", (0,))        # evicts qubit 0
        c.add("cx", (0, 1))     # control no longer |0>: kept
        out = compress_initial_state(c)
        assert _names(out) == ["h", "cx"]

    def test_swap_exchanges_zero_membership(self):
        c = Circuit(2)
        c.add("h", (0,))
        c.add("swap", (0, 1))   # q1 now carries the |+>, q0 is |0>
        c.add("cx", (0, 1))     # |0> control again: identity
        c.measure_all()
        out = compress_initial_state(c)
        assert "cx" not in _names(out)
        _assert_same_distribution(c, out)

    def test_double_zero_swap_dropped(self):
        c = Circuit(2)
        c.add("swap", (0, 1))
        c.add("x", (0,))
        out = compress_initial_state(c)
        assert _names(out) == ["x"]

    def test_noop_returns_same_object(self):
        c = Circuit(2)
        c.add("h", (0,))
        c.add("cx", (0, 1))
        assert compress_initial_state(c) is c


class TestCommuteCancel:
    def test_cx_pair_cancels_through_control_rz(self):
        c = Circuit(2)
        c.add("cx", (0, 1))
        c.add("rz", (0,), (0.5,))   # commutes with the cx control
        c.add("cx", (0, 1))
        out = cancel_commuting_gates(c)
        assert _names(out) == ["rz"]

    def test_rotations_merge_through_commuting_cx(self):
        c = Circuit(2)
        c.add("rz", (0,), (0.4,))
        c.add("cx", (0, 1))         # Z on control commutes
        c.add("rz", (0,), (0.6,))
        out = cancel_commuting_gates(c)
        # The merged rotation lands at the first rz's slot.
        assert _names(out) == ["rz", "cx"]
        (rz,) = [i for i in out if i.name == "rz"]
        assert rz.params[0] == pytest.approx(1.0)
        _assert_same_unitary(c, out)

    def test_blocked_by_non_commuting_gate(self):
        c = Circuit(2)
        c.add("cx", (0, 1))
        c.add("rz", (1,), (0.5,))   # Z on the target does NOT commute
        c.add("cx", (0, 1))
        assert cancel_commuting_gates(c) is c

    def test_blocked_by_barrier(self):
        c = Circuit(2)
        c.add("h", (0,))
        c.barrier()
        c.add("h", (0,))
        assert cancel_commuting_gates(c) is c

    def test_shared_control_cnots_cancel_through_each_other(self):
        c = Circuit(3)
        c.add("cx", (0, 1))
        c.add("cx", (0, 2))         # shares only the control: commutes
        c.add("cx", (0, 1))
        out = cancel_commuting_gates(c)
        assert _names(out) == ["cx"]
        assert out.instructions[0].qubits == (0, 2)

    def test_preserves_distribution_on_random_circuits(self):
        import random

        from repro.contracts.fuzz import random_circuit

        for seed in range(12):
            rng = random.Random(seed)
            c = random_circuit(rng, 3, 10)
            out = cancel_commuting_gates(c)
            _assert_same_distribution(c, out)


class TestBlockResynthesis:
    def test_identity_block_removed(self):
        c = Circuit(2)
        c.add("cx", (0, 1))
        c.add("cx", (0, 1))
        out = resynthesize_blocks(c)
        assert len(out) == 0

    def test_three_cx_reduce_to_one(self):
        # cx(0,1) rz(1) cx(0,1) is locals + <=1 cx away from identity
        # only in special cases; use the canonical compressible block:
        # cx(0,1) cx(1,0) cx(0,1) = swap, which is NOT <=1 cx — so check
        # a block that genuinely reduces: cx · (I x rz) · cx with a
        # Z rotation on the *control* collapses to locals.
        c = Circuit(2)
        c.add("cx", (0, 1))
        c.add("rz", (0,), (0.9,))
        c.add("cx", (0, 1))
        out = resynthesize_blocks(c)
        assert out.num_two_qubit_gates() == 0
        _assert_same_unitary(c, out)

    def test_single_cx_block_left_alone(self):
        c = Circuit(2)
        c.add("cx", (0, 1))
        c.add("rz", (1,), (0.3,))
        assert resynthesize_blocks(c) is c

    def test_cx_times_locals_peels_to_one_cx(self):
        c = Circuit(2)
        c.add("cx", (0, 1))
        c.add("rx", (1,), (0.4,))
        c.add("cx", (0, 1))
        c.add("cx", (0, 1))  # the pair after rx is identity
        out = resynthesize_blocks(c)
        assert out.num_two_qubit_gates() <= 1
        _assert_same_unitary(c, out)

    def test_disjoint_instructions_interleave(self):
        c = Circuit(3)
        c.add("cx", (0, 1))
        c.add("h", (2,))            # disjoint: skipped over
        c.add("cx", (0, 1))
        out = resynthesize_blocks(c)
        assert _names(out) == ["h"]

    def test_never_increases_two_qubit_count(self):
        import random

        from repro.contracts.fuzz import random_circuit
        from repro.ir.decompose import decompose_to_basis

        for seed in range(12):
            rng = random.Random(100 + seed)
            c = decompose_to_basis(random_circuit(rng, 3, 12))
            out = resynthesize_blocks(c)
            assert out.num_two_qubit_gates() <= c.num_two_qubit_gates()
            _assert_same_distribution(c, out)


class TestCoalesce1Q:
    def test_merges_run_to_single_rotation(self):
        c = Circuit(1)
        c.add("h", (0,))
        c.add("h", (0,))
        c.add("t", (0,))
        c.add("t", (0,))
        out = coalesce_rotations(c)
        assert len(out) == 1
        assert out.instructions[0].name == "rz"
        assert out.instructions[0].params[0] == pytest.approx(math.pi / 2)

    def test_keeps_run_when_not_strictly_shorter(self):
        c = Circuit(1)
        c.add("h", (0,))
        assert coalesce_rotations(c) is c

    def test_run_flushes_at_two_qubit_gate(self):
        c = Circuit(2)
        c.add("t", (0,))
        c.add("t", (0,))
        c.add("cx", (0, 1))
        c.add("t", (0,))
        out = coalesce_rotations(c)
        assert _names(out) == ["rz", "cx", "t"]
        _assert_same_unitary(c, out)

    def test_identity_run_dropped(self):
        c = Circuit(1)
        c.add("x", (0,))
        c.add("x", (0,))
        out = coalesce_rotations(c)
        assert len(out) == 0


class TestPresets:
    def test_preset_names(self):
        assert OPT_PRESETS == ("none", "basic", "full")
        assert set(PRESET_PIPELINES) == set(OPT_PRESETS)

    def test_validate_preset_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown optimization preset"):
            validate_preset("aggressive")

    def test_basic_is_prefix_family_of_full(self):
        basic = {p.name for p in preset_passes("basic")}
        full = {p.name for p in preset_passes("full")}
        assert basic < full
        assert preset_passes("none") == ()

    def test_build_pass_manager_none_is_none(self):
        assert build_pass_manager("none") is None
        assert build_pass_manager("full") is not None


class TestPassManager:
    def _bell_with_junk(self):
        c = Circuit(2)
        c.add("z", (0,))            # state compression food
        c.add("h", (0,))
        c.add("cx", (0, 1))
        c.add("rz", (0,), (0.3,))
        c.add("rz", (0,), (-0.3,))  # cancels
        c.measure_all()
        return c

    def test_reaches_fixed_point_and_accounts(self):
        manager = build_pass_manager("full")
        c = self._bell_with_junk()
        out = manager.run(c)
        assert manager.converged
        assert manager.iterations <= DEFAULT_MAX_ITERATIONS
        assert manager.gates_removed() == len(c) - len(out)
        rows = manager.stats_rows()
        assert [row[0] for row in rows] == [
            p.name for p in preset_passes("full")
        ]
        assert all(row[1] >= 1 for row in rows)  # every pass ran
        _assert_same_distribution(c, out)

    def test_idempotent_on_own_output(self):
        manager = build_pass_manager("full")
        once = manager.run(self._bell_with_junk())
        second = build_pass_manager("full")
        twice = second.run(once)
        assert list(twice) == list(once)
        assert second.iterations == 1  # no rewrites: first sweep is clean

    def test_strict_recorder_passes_clean_pipeline(self):
        manager = build_pass_manager("full", device="unit-test")
        recorder = ContractRecorder(ContractMode.STRICT)
        manager.run(self._bell_with_junk(), recorder=recorder)

    def test_distribution_violation_raises_opt001(self):
        bad = CircuitPass(
            "bad-flip",
            lambda c: Circuit(
                c.num_qubits,
                instructions=[i for i in c if i.name != "h"],
                name=c.name,
            ),
        )
        manager = PassManager([bad], device="unit-test")
        recorder = ContractRecorder(ContractMode.STRICT)
        with pytest.raises(PassDistributionError) as err:
            manager.run(self._bell_with_junk(), recorder=recorder)
        assert err.value.code == "OPT001"

    def test_monotonicity_violation_raises_opt002(self):
        def add_cx(c):
            out = Circuit(c.num_qubits, instructions=list(c), name=c.name)
            out.add("cx", (0, 1))
            out.add("cx", (0, 1))
            return out

        manager = PassManager([CircuitPass("bad-grow", add_cx)])
        recorder = ContractRecorder(ContractMode.STRICT)
        c = Circuit(2)
        c.add("h", (0,))
        with pytest.raises(PassMonotonicityError) as err:
            manager.run(c, recorder=recorder)
        assert err.value.code == "OPT002"

    def test_nonconvergence_raises_opt003(self):
        def oscillate(c):
            # Flips x <-> y forever: never reaches a fixed point.
            out = Circuit(c.num_qubits, name=c.name)
            out.add("y" if c.instructions[0].name == "x" else "x", (0,))
            return out

        manager = PassManager(
            [CircuitPass("oscillator", oscillate)], max_iterations=3
        )
        c = Circuit(1)
        c.add("x", (0,))
        out = manager.run(c)  # no recorder: guard trips silently
        assert not manager.converged
        recorder = ContractRecorder(ContractMode.STRICT)
        with pytest.raises(PassConvergenceError) as err:
            manager.run(out, recorder=recorder)
        assert err.value.code == "OPT003"

    def test_warn_mode_records_instead_of_raising(self):
        def drop_h(c):
            return Circuit(
                c.num_qubits,
                instructions=[i for i in c if i.name != "h"],
                name=c.name,
            )

        manager = PassManager([CircuitPass("bad-flip", drop_h)])
        recorder = ContractRecorder(ContractMode.WARN)
        manager.run(self._bell_with_junk(), recorder=recorder)
        assert any("OPT001" in v for v in recorder.violations)

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError):
            PassManager([], max_iterations=0)


class TestErrorCodeRegistry:
    def test_opt_codes_registered(self):
        for code in ("OPT001", "OPT002", "OPT003", "OPT004"):
            assert code in ERROR_CODES


class TestCommuteConfigDiagnostic:
    """Satellite: TriQCompiler(commute=True) at a level without 1Q
    optimization used to be a silent no-op; it now fails loudly at
    construction with a structured OPT004."""

    def test_commute_at_level_n_raises_opt004(self):
        device = device_by_name("IBM Q5 Tenerife", day=0)
        with pytest.raises(OptimizationConfigError) as err:
            TriQCompiler(device, level=OptimizationLevel.N, commute=True)
        assert err.value.code == "OPT004"
        assert "1Q" in str(err.value)

    def test_commute_at_optimizing_levels_still_fine(self):
        device = device_by_name("IBM Q5 Tenerife", day=0)
        for level in (
            OptimizationLevel.OPT_1Q,
            OptimizationLevel.OPT_1QC,
            OptimizationLevel.OPT_1QCN,
        ):
            TriQCompiler(device, level=level, commute=True)

    def test_level_n_without_commute_unaffected(self):
        device = device_by_name("IBM Q5 Tenerife", day=0)
        TriQCompiler(device, level=OptimizationLevel.N)

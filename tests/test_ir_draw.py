"""Tests for the ASCII circuit drawer."""

from repro.ir import Circuit
from repro.ir.draw import draw_circuit
from repro.programs import bernstein_vazirani


class TestDrawCircuit:
    def test_every_qubit_gets_a_line(self):
        circuit, _ = bernstein_vazirani(4)
        text = draw_circuit(circuit)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("p0:")
        assert lines[3].startswith("p3:")

    def test_gate_labels_present(self):
        circuit, _ = bernstein_vazirani(4)
        text = draw_circuit(circuit)
        assert "[H]" in text
        assert "[X]" in text
        assert "(+)" in text  # CNOT target
        assert "[M]" in text  # measurement

    def test_cx_control_and_target_symbols(self):
        text = draw_circuit(Circuit(2).cx(0, 1))
        lines = text.splitlines()
        assert "*" in lines[0]
        assert "(+)" in lines[1]

    def test_cz_target_symbol(self):
        text = draw_circuit(Circuit(2).cz(0, 1))
        assert "(Z)" in text

    def test_vertical_wire_through_middle_qubits(self):
        text = draw_circuit(Circuit(3).cx(0, 2))
        middle = text.splitlines()[1]
        assert "|" in middle

    def test_parallel_gates_share_column(self):
        parallel = draw_circuit(Circuit(2).h(0).h(1))
        serial = draw_circuit(Circuit(2).h(0).cx(0, 1).h(1))
        assert len(parallel.splitlines()[0]) < len(serial.splitlines()[0])

    def test_rotation_angle_shown(self):
        text = draw_circuit(Circuit(1).rx(0.5, 0))
        assert "RX(0.5)" in text

    def test_multiqubit_composite_positions(self):
        text = draw_circuit(Circuit(3).ccx(0, 1, 2))
        assert "[CCX:0]" in text
        assert "[CCX:2]" in text

    def test_lines_equal_length(self):
        circuit, _ = bernstein_vazirani(6)
        lines = draw_circuit(circuit).splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_custom_prefix(self):
        text = draw_circuit(Circuit(1).h(0), qubit_prefix="q")
        assert text.startswith("q0:")

"""Structural tests for the assignment-problem description."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import AssignmentProblem, MaxMinSolver


def scores(n, seed=0):
    rng = np.random.default_rng(seed)
    mat = rng.uniform(0.4, 0.99, (n, n))
    mat = (mat + mat.T) / 2
    np.fill_diagonal(mat, 1.0)
    return mat


class TestNeighbors:
    def test_orientation(self):
        problem = AssignmentProblem(3, 4)
        mat = scores(4)
        problem.add_pair_term(0, 2, mat)
        adjacency = problem.neighbors()
        # From var 0's perspective, axis 0 indexes var 0's value.
        other, oriented = adjacency[0][0]
        assert other == 2
        np.testing.assert_allclose(oriented, mat)
        # From var 2's perspective the matrix is transposed.
        other, oriented = adjacency[2][0]
        assert other == 0
        np.testing.assert_allclose(oriented, mat.T)

    def test_isolated_variable_has_no_neighbors(self):
        problem = AssignmentProblem(3, 4)
        problem.add_pair_term(0, 1, scores(4))
        assert problem.neighbors()[2] == []


class TestScores:
    def test_term_scores_order(self):
        problem = AssignmentProblem(2, 3)
        problem.add_unary_term(0, [0.9, 0.8, 0.7])
        mat = scores(3)
        problem.add_pair_term(0, 1, mat)
        values = problem.term_scores([1, 2])
        assert values[0] == pytest.approx(0.8)
        assert values[1] == pytest.approx(mat[1, 2])

    def test_product_score(self):
        problem = AssignmentProblem(2, 3)
        problem.add_unary_term(0, [0.5, 0.5, 0.5])
        problem.add_unary_term(1, [0.4, 0.4, 0.4])
        assert problem.product_score([0, 1]) == pytest.approx(0.2)


class TestObjectiveProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_maxmin_at_least_greedy(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 5))
        num_values = int(rng.integers(num_vars, 7))
        problem = AssignmentProblem(num_vars, num_values)
        mat = scores(num_values, seed)
        for a in range(num_vars - 1):
            problem.add_pair_term(a, a + 1, mat)
        solver = MaxMinSolver(problem)
        greedy_obj = problem.min_score(solver.greedy())
        assert solver.solve().objective >= greedy_obj - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_objective_matches_reported_assignment(self, seed):
        rng = np.random.default_rng(seed)
        num_values = int(rng.integers(3, 7))
        problem = AssignmentProblem(3, num_values)
        mat = scores(num_values, seed)
        problem.add_pair_term(0, 1, mat)
        problem.add_pair_term(1, 2, mat)
        solution = MaxMinSolver(problem).solve()
        assert solution.objective == pytest.approx(
            problem.min_score(solution.assignment)
        )

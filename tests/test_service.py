"""Integration tests for the ``repro serve`` daemon.

Most tests run the asyncio server on a background thread inside the
test process (port 0, real sockets, ``http.client`` requests), so the
coalescer, warm cache, queue, and drain logic are all exercised
in-process where coverage can see them.  One test boots the daemon as a
real subprocess and delivers an actual SIGTERM to lock the exit-0 drain
contract end to end.

Determinism notes:

* Coalescing tests freeze dispatch with ``/admin/pause``, pile up
  identical submissions behind one primary, then resume — no timing
  races.
* The fault-injection sweep uses ``workers: 2`` so the injected crash
  fires inside a pool worker process (serial mode would take the
  daemon's own process down — exactly what the test proves cannot
  happen to the daemon).
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cache import activate_cache
from repro.obs import parse_prometheus
from repro.service import ReproService, ServiceConfig, TenantClass

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


class ServiceHarness:
    """One in-process daemon on an ephemeral port."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config_kwargs.setdefault("workers", 2)
        config_kwargs.setdefault("drain_grace_s", 30.0)
        self.service = ReproService(ServiceConfig(**config_kwargs))
        self.exit_code = None
        self.thread = threading.Thread(target=self._main, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while self.service.port is None:
            if time.monotonic() > deadline:
                raise RuntimeError("service did not come up")
            time.sleep(0.01)

    def _main(self):
        import asyncio

        self.exit_code = asyncio.run(self.service.serve())

    def request(self, method, path, body=None, raw=False):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=170
        )
        try:
            data = json.dumps(body) if isinstance(body, dict) else body
            conn.request(method, path, body=data)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        if raw:
            return response.status, text
        return response.status, (json.loads(text) if text else {})

    def request_with_headers(self, method, path, body=None):
        """Like request(), but also returns lower-cased response headers."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=170
        )
        try:
            data = json.dumps(body) if isinstance(body, dict) else body
            conn.request(method, path, body=data)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        headers = {k.lower(): v for k, v in response.getheaders()}
        return (
            response.status,
            headers,
            json.loads(text) if text else {},
        )

    def metric(self, name, **labels):
        """One sample's value from a fresh /metrics scrape (0.0 if absent)."""
        _, text = self.request("GET", "/metrics", raw=True)
        series = parse_prometheus(text).get(name, {})
        wanted = json.dumps(
            {k: str(v) for k, v in labels.items()}, sort_keys=True
        )
        return series.get(wanted, 0.0)

    def stop(self):
        loop = self.service.loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.request_stop)
        self.thread.join(timeout=60)
        return self.exit_code


@pytest.fixture
def harness(tmp_path):
    instance = ServiceHarness(cache_dir=tmp_path / "cache", admin=True)
    try:
        yield instance
    finally:
        instance.stop()
        activate_cache(None)


class TestHttpSurface:
    def test_healthz(self, harness):
        status, payload = harness.request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok" and payload["draining"] is False

    def test_unknown_route_404(self, harness):
        assert harness.request("GET", "/nope")[0] == 404

    def test_submit_requires_post(self, harness):
        assert harness.request("GET", "/v1/compile")[0] == 405

    def test_bad_json_400(self, harness):
        status, payload = harness.request(
            "POST", "/v1/compile", body="{not json"
        )
        assert status == 400 and "JSON" in payload["error"]

    def test_unknown_device_400(self, harness):
        status, _ = harness.request(
            "POST", "/v1/compile", {"benchmark": "HS2", "device": "andromeda"}
        )
        assert status == 400

    def test_unknown_field_400(self, harness):
        status, payload = harness.request(
            "POST",
            "/v1/compile",
            {"benchmark": "HS2", "device": "tenerife", "vendor": "acme"},
        )
        assert status == 400 and "vendor" in payload["error"]

    def test_compile_needs_exactly_one_source(self, harness):
        assert (
            harness.request("POST", "/v1/compile", {"device": "tenerife"})[0]
            == 400
        )

    def test_missing_job_404(self, harness):
        assert harness.request("GET", "/v1/jobs/job-999999")[0] == 404

    def test_metrics_parse_strict(self, harness):
        harness.request("GET", "/healthz")
        status, text = harness.request("GET", "/metrics", raw=True)
        assert status == 200
        series = parse_prometheus(text)
        assert "repro_service_requests_total" in series
        assert "repro_service_queue_depth" in series


class TestJobs:
    def test_compile_waits_and_matches_api(self, harness):
        from repro import api

        status, payload = harness.request(
            "POST", "/v1/compile", {"benchmark": "HS2", "device": "tenerife"}
        )
        assert status == 200
        assert payload["job"]["status"] == "done"
        reference = api.compile("HS2", device="tenerife")
        assert payload["result"]["executable"] == reference.executable
        assert payload["result"]["cache_key"] == reference.cache_key
        assert payload["result"]["cache_hit"] is False

    def test_warm_cache_is_shared_across_requests(self, harness):
        body = {"benchmark": "HS2", "device": "tenerife"}
        harness.request("POST", "/v1/compile", body)
        before = harness.metric(
            "repro_service_cache_events_total", event="memory_hit"
        )
        _, payload = harness.request("POST", "/v1/compile", body)
        assert payload["result"]["cache_hit"] is True
        after = harness.metric(
            "repro_service_cache_events_total", event="memory_hit"
        )
        assert after > before

    def test_run_over_http(self, harness):
        from repro import api

        status, payload = harness.request(
            "POST",
            "/v1/run",
            {"benchmark": "HS2", "device": "tenerife", "fault_samples": 20},
        )
        assert status == 200
        reference = api.run("HS2", device="tenerife", fault_samples=20)
        assert payload["result"]["success_rate"] == reference.success_rate

    def test_async_submit_and_poll(self, harness):
        status, payload = harness.request(
            "POST",
            "/v1/compile",
            {"benchmark": "HS2", "device": "agave", "wait": False},
        )
        assert status == 202
        job_id = payload["job"]["id"]
        deadline = time.monotonic() + 120
        while True:
            status, payload = harness.request("GET", f"/v1/jobs/{job_id}")
            if payload["job"]["status"] in ("done", "failed"):
                break
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.05)
        assert payload["job"]["status"] == "done"
        assert payload["result"]["benchmark"] == "HS2"
        _, listing = harness.request("GET", "/v1/jobs")
        assert job_id in [job["id"] for job in listing["jobs"]]

    def test_tenant_label_reaches_metrics(self, harness):
        harness.request(
            "POST",
            "/v1/compile",
            {"benchmark": "HS2", "device": "tenerife", "tenant": "team-a"},
        )
        assert (
            harness.metric(
                "repro_service_jobs_submitted_total",
                kind="compile",
                tenant="team-a",
            )
            == 1.0
        )


class TestCoalescing:
    def test_identical_inflight_jobs_compile_once(self, harness):
        """N concurrent identical submissions -> one underlying compile."""
        assert harness.request("POST", "/admin/pause")[0] == 200
        body = {"benchmark": "BV6", "device": "melbourne"}
        results = []

        def submit():
            results.append(harness.request("POST", "/v1/compile", body))

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30
        while len(harness.service.jobs) < 4:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert harness.request("POST", "/admin/resume")[0] == 200
        for thread in threads:
            thread.join(timeout=170)
        assert [status for status, _ in results] == [200] * 4
        primaries = [
            payload for _, payload in results
            if payload["job"]["coalesced_with"] is None
        ]
        duplicates = [
            payload for _, payload in results
            if payload["job"]["coalesced_with"] is not None
        ]
        assert len(primaries) == 1 and len(duplicates) == 3
        primary_id = primaries[0]["job"]["id"]
        assert {d["job"]["coalesced_with"] for d in duplicates} == {
            primary_id
        }
        # Every response carries the same compiled artifact.
        executables = {
            payload["result"]["executable"] for _, payload in results
        }
        assert len(executables) == 1
        # The counters prove exactly one execution and three folds.
        assert (
            harness.metric(
                "repro_service_cache_events_total", event="coalesced"
            )
            == 3.0
        )
        assert (
            harness.metric(
                "repro_service_jobs_completed_total",
                kind="compile",
                tenant="default",
                status="done",
            )
            == 1.0
        )

    def test_finished_jobs_do_not_coalesce(self, harness):
        body = {"benchmark": "HS2", "device": "tenerife"}
        first = harness.request("POST", "/v1/compile", body)[1]
        second = harness.request("POST", "/v1/compile", body)[1]
        assert first["job"]["coalesced_with"] is None
        assert second["job"]["coalesced_with"] is None
        assert second["result"]["cache_hit"] is True


class TestSweepAndFaults:
    def test_sweep_over_http(self, harness):
        status, payload = harness.request(
            "POST",
            "/v1/sweep",
            {
                "device": "tenerife",
                "compilers": "N",
                "benchmarks": ["BV4", "HS2"],
                "with_success": False,
            },
        )
        assert status == 200
        result = payload["result"]
        assert [m["benchmark"] for m in result["measurements"]] == [
            "BV4", "HS2",
        ]
        assert result["failures"] == []
        assert result["run_id"]

    def test_injected_worker_crash_fails_only_that_job(
        self, harness, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:BV4")
        status, payload = harness.request(
            "POST",
            "/v1/sweep",
            {
                "device": "tenerife",
                "compilers": "N",
                "benchmarks": ["BV4", "HS2"],
                "with_success": False,
                "workers": 2,
            },
        )
        assert status == 200
        result = payload["result"]
        assert payload["job"]["status"] == "done"
        failures = result["failures"]
        assert [f["benchmark"] for f in failures] == ["BV4"]
        assert failures[0]["kind"] == "crash"
        assert failures[0]["attempts"] >= 1
        assert [m["benchmark"] for m in result["measurements"]] == ["HS2"]
        # The daemon survived its worker's death.
        assert harness.request("GET", "/healthz")[0] == 200

    def test_failed_job_returns_structured_error(self, harness, monkeypatch):
        # The job executor runs in this process: make the api call blow
        # up and assert the failure stays contained to the job.
        from repro import api

        def boom(*args, **kwargs):
            raise RuntimeError("calibration archive offline")

        monkeypatch.setattr(api, "sweep", boom)
        status, payload = harness.request(
            "POST",
            "/v1/sweep",
            {"device": "tenerife", "benchmarks": ["HS2"],
             "with_success": False},
        )
        assert status == 500
        assert payload["job"]["status"] == "failed"
        assert payload["error"] == {
            "type": "RuntimeError",
            "message": "calibration archive offline",
        }
        assert harness.request("GET", "/healthz")[0] == 200


class TestBackpressureAndDrain:
    def test_queue_full_maps_to_429(self, tmp_path):
        harness = ServiceHarness(
            cache_dir=tmp_path / "cache",
            admin=True,
            tenants={"tiny": TenantClass("tiny", max_queued=1)},
        )
        try:
            assert harness.request("POST", "/admin/pause")[0] == 200
            # Two *distinct* requests: an identical one would coalesce
            # onto the first instead of occupying a queue slot.
            first = {
                "benchmark": "HS2", "device": "tenerife",
                "tenant": "tiny", "wait": False,
            }
            second = {
                "benchmark": "BV4", "device": "tenerife",
                "tenant": "tiny", "wait": False,
            }
            assert harness.request("POST", "/v1/compile", first)[0] == 202
            status, payload = harness.request("POST", "/v1/compile", second)
            assert status == 429 and "tiny" in payload["error"]
            harness.request("POST", "/admin/resume")
        finally:
            harness.stop()
            activate_cache(None)

    def test_draining_rejects_submissions_with_503(self, harness):
        harness.service.draining = True
        try:
            status, payload = harness.request(
                "POST",
                "/v1/compile",
                {"benchmark": "HS2", "device": "tenerife"},
            )
            assert status == 503 and "draining" in payload["error"]
        finally:
            harness.service.draining = False

    def test_stop_drains_and_exits_zero(self, tmp_path):
        harness = ServiceHarness(cache_dir=tmp_path / "cache")
        harness.request(
            "POST", "/v1/compile", {"benchmark": "HS2", "device": "tenerife"}
        )
        assert harness.stop() == 0
        activate_cache(None)

    def test_admin_endpoints_hidden_without_flag(self, tmp_path):
        harness = ServiceHarness(cache_dir=tmp_path / "cache", admin=False)
        try:
            assert harness.request("POST", "/admin/pause")[0] == 404
        finally:
            harness.stop()
            activate_cache(None)


class TestRealProcessSigterm:
    def test_sigterm_drains_with_exit_zero(self, tmp_path):
        """The daemon as users run it: real process, real signal."""
        port_file = tmp_path / "port"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env.pop("REPRO_FAULT_INJECT", None)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", str(port_file),
                "--cache-dir", str(tmp_path / "cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists():
                assert proc.poll() is None, proc.stderr.read().decode()
                assert time.monotonic() < deadline, "daemon never listened"
                time.sleep(0.1)
            port = int(port_file.read_text().strip())
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/healthz")
            assert conn.getresponse().status == 200
            conn.close()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            stderr = proc.stderr.read().decode()
            assert "drained cleanly" in stderr
            # The daemon cleans up its own port file on shutdown, so a
            # supervisor polling for it never reads a stale port.
            assert not port_file.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_sigint_drains_like_sigterm(self, tmp_path):
        """Ctrl-C gets the same graceful drain + exit 0 as SIGTERM."""
        port_file = tmp_path / "port"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env.pop("REPRO_FAULT_INJECT", None)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", str(port_file),
                "--cache-dir", str(tmp_path / "cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists():
                assert proc.poll() is None, proc.stderr.read().decode()
                assert time.monotonic() < deadline, "daemon never listened"
                time.sleep(0.1)
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=60) == 0
            assert not port_file.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestHealthzSurface:
    def test_healthz_reports_pause_and_wal_state(self, harness):
        status, payload = harness.request("GET", "/healthz")
        assert status == 200
        assert payload["paused"] is False
        assert payload["draining"] is False
        assert payload["wal_enabled"] is True  # cache_dir set -> WAL on
        assert harness.request("POST", "/admin/pause")[0] == 200
        try:
            _, paused = harness.request("GET", "/healthz")
            assert paused["paused"] is True
        finally:
            harness.request("POST", "/admin/resume")

    def test_healthz_reports_wal_off(self, tmp_path):
        instance = ServiceHarness(
            cache_dir=tmp_path / "cache", wal_enabled=False
        )
        try:
            _, payload = instance.request("GET", "/healthz")
            assert payload["wal_enabled"] is False
        finally:
            instance.stop()
            activate_cache(None)


class TestRetryAfterHeaders:
    def test_queue_full_429_carries_retry_after(self, tmp_path):
        harness = ServiceHarness(
            cache_dir=tmp_path / "cache",
            admin=True,
            tenants={"tiny": TenantClass("tiny", max_queued=1)},
        )
        try:
            assert harness.request("POST", "/admin/pause")[0] == 200
            first = {
                "benchmark": "HS2", "device": "tenerife",
                "tenant": "tiny", "wait": False,
            }
            second = {
                "benchmark": "BV4", "device": "tenerife",
                "tenant": "tiny", "wait": False,
            }
            assert harness.request("POST", "/v1/compile", first)[0] == 202
            status, headers, payload = harness.request_with_headers(
                "POST", "/v1/compile", second
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            harness.request("POST", "/admin/resume")
        finally:
            harness.stop()
            activate_cache(None)

    def test_draining_503_carries_retry_after(self, harness):
        harness.service.draining = True
        try:
            status, headers, _ = harness.request_with_headers(
                "POST",
                "/v1/compile",
                {"benchmark": "HS2", "device": "tenerife"},
            )
            assert status == 503
            assert headers["retry-after"] == "1"
        finally:
            harness.service.draining = False

    def test_plain_400_has_no_retry_after(self, harness):
        status, headers, _ = harness.request_with_headers(
            "POST", "/v1/compile", {"device": "tenerife"}
        )
        assert status == 400 and "retry-after" not in headers


class TestDeadlines:
    def test_malformed_deadline_is_400(self, harness):
        for bad in ("soon", -1, 0):
            status, payload = harness.request(
                "POST",
                "/v1/compile",
                {"benchmark": "HS2", "device": "tenerife",
                 "deadline_s": bad},
            )
            assert status == 400 and "deadline_s" in payload["error"]

    def test_admission_rejects_unmeetable_deadline(self, tmp_path):
        """A rate-limited tenant with a full burst of queued work ahead
        provably cannot start a 1s-deadline job for ~10s: reject at
        submission (429 + Retry-After), don't queue a guaranteed loss."""
        harness = ServiceHarness(
            cache_dir=tmp_path / "cache",
            admin=True,
            tenants={
                "slow": TenantClass(
                    "slow", rate_per_s=0.1, burst=1, max_queued=10
                )
            },
        )
        try:
            assert harness.request("POST", "/admin/pause")[0] == 200
            filler = {
                "benchmark": "HS2", "device": "tenerife",
                "tenant": "slow", "wait": False,
            }
            assert harness.request("POST", "/v1/compile", filler)[0] == 202
            doomed = {
                "benchmark": "BV4", "device": "tenerife",
                "tenant": "slow", "wait": False, "deadline_s": 1.0,
            }
            status, headers, payload = harness.request_with_headers(
                "POST", "/v1/compile", doomed
            )
            assert status == 429
            assert "deadline" in payload["error"]
            assert int(headers["retry-after"]) >= 9  # ~10s of rate debt
            assert harness.metric(
                "repro_service_deadline_events_total", stage="admission"
            ) == 1.0
            # The same submission without a deadline is accepted: only
            # provably-unmeetable budgets are turned away.
            relaxed = dict(doomed)
            del relaxed["deadline_s"]
            assert harness.request("POST", "/v1/compile", relaxed)[0] == 202
            harness.request("POST", "/admin/resume")
        finally:
            harness.stop()
            activate_cache(None)

    def test_execution_deadline_cancels_with_structured_error(
        self, harness, monkeypatch
    ):
        """A job that blows its budget mid-execution fails with a
        structured DeadlineExceeded naming the stage, and the deadline
        counter ticks."""
        from repro import api

        real_compile = api.compile

        def glacial_compile(*args, **kwargs):
            time.sleep(3.0)
            return real_compile(*args, **kwargs)

        monkeypatch.setattr(api, "compile", glacial_compile)
        status, payload = harness.request(
            "POST",
            "/v1/compile",
            {"benchmark": "HS2", "device": "tenerife", "deadline_s": 0.4},
        )
        assert status == 504  # the client's budget, not a server fault
        assert payload["job"]["status"] == "failed"
        assert payload["error"]["type"] == "DeadlineExceeded"
        assert payload["error"]["stage"] == "execution"
        assert payload["error"]["deadline_s"] == 0.4
        assert harness.metric(
            "repro_service_deadline_events_total", stage="execution"
        ) == 1.0

    def test_deadline_echoed_in_describe(self, harness):
        status, payload = harness.request(
            "POST",
            "/v1/compile",
            {"benchmark": "HS2", "device": "tenerife", "deadline_s": 120},
        )
        assert status == 200
        assert payload["job"]["deadline_s"] == 120.0
        assert payload["job"]["status"] == "done"
        # Live (non-replayed) jobs are never marked recovered.
        assert payload["job"]["recovered"] is False
        assert payload["job"]["interrupted"] is False

"""Tests for the commutation-aware rotation motion pass."""

import math

from hypothesis import given, settings, strategies as st

from tests.helpers import assert_equal_up_to_phase
from repro.compiler.commute import commute_rotations_forward
from repro.compiler.onequbit import count_pulses, optimize_single_qubit_gates
from repro.devices.gatesets import GATESET_BY_FAMILY, VendorFamily
from repro.ir import Circuit
from repro.sim import circuit_unitary

IBM = GATESET_BY_FAMILY[VendorFamily.IBM]


class TestCommutationRules:
    def test_rz_moves_past_cx_control(self):
        circuit = Circuit(2).rz(0.5, 0).cx(0, 1)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["cx", "rz"]

    def test_rz_blocked_on_cx_target(self):
        circuit = Circuit(2).rz(0.5, 1).cx(0, 1)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["rz", "cx"]

    def test_x_moves_past_cx_target(self):
        circuit = Circuit(2).x(1).cx(0, 1)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["cx", "x"]

    def test_h_never_moves(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["h", "cx"]

    def test_rz_moves_past_cz_either_side(self):
        for qubit in (0, 1):
            circuit = Circuit(2).rz(0.5, qubit).cz(0, 1)
            moved = commute_rotations_forward(circuit)
            assert [i.name for i in moved] == ["cz", "rz"]

    def test_rx_moves_past_xx(self):
        circuit = Circuit(2).rx(0.5, 0).xx(math.pi / 4, 0, 1)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["xx", "rx"]

    def test_travels_through_chain(self):
        circuit = Circuit(3).rz(0.5, 0).cx(0, 1).cx(0, 2)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["cx", "cx", "rz"]

    def test_measure_blocks_motion(self):
        circuit = Circuit(2).rz(0.5, 0).measure(0)
        moved = commute_rotations_forward(circuit)
        assert [i.name for i in moved] == ["rz", "measure"]


class TestSemantics:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_circuits_unitarily_identical(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        circuit = Circuit(3)
        for _ in range(12):
            kind = rng.integers(5)
            q = int(rng.integers(3))
            if kind == 0:
                circuit.rz(float(rng.uniform(-3, 3)), q)
            elif kind == 1:
                circuit.rx(float(rng.uniform(-3, 3)), q)
            elif kind == 2:
                circuit.h(q)
            else:
                a, b = rng.choice(3, size=2, replace=False)
                if kind == 3:
                    circuit.cx(int(a), int(b))
                else:
                    circuit.cz(int(a), int(b))
        moved = commute_rotations_forward(circuit)
        assert_equal_up_to_phase(
            circuit_unitary(moved), circuit_unitary(circuit), atol=1e-8
        )

    def test_enables_extra_cancellation(self):
        # rx(t) . cx . rx(-t) on the *target* cancels entirely once the
        # first rx commutes through — the adjacency-only optimizer
        # cannot see this.
        circuit = Circuit(2)
        circuit.rx(0.7, 1)
        circuit.cx(0, 1)
        circuit.rx(-0.7, 1)

        plain = optimize_single_qubit_gates(circuit, IBM)
        moved = optimize_single_qubit_gates(
            commute_rotations_forward(circuit), IBM
        )
        assert count_pulses(moved) < count_pulses(plain)
        assert count_pulses(moved) == 0  # everything cancels

    def test_never_worse_than_plain_optimization(self):
        import numpy as np

        rng = np.random.default_rng(5)
        for _ in range(10):
            circuit = Circuit(3)
            for _ in range(15):
                kind = rng.integers(4)
                q = int(rng.integers(3))
                if kind == 0:
                    circuit.rz(float(rng.uniform(-3, 3)), q)
                elif kind == 1:
                    circuit.h(q)
                elif kind == 2:
                    circuit.t(q)
                else:
                    a, b = rng.choice(3, size=2, replace=False)
                    circuit.cx(int(a), int(b))
            plain = optimize_single_qubit_gates(circuit, IBM)
            moved = optimize_single_qubit_gates(
                commute_rotations_forward(circuit), IBM
            )
            assert count_pulses(moved) <= count_pulses(plain)

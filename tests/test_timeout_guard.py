"""Tests for the per-test wall-clock guard (tests/helpers.alarm_timeout).

The guard is wired into both conftests; these tests prove it actually
fires — in-process with a sub-second budget, and end-to-end through a
child pytest run driven purely by ``$REPRO_TEST_TIMEOUT_S``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

# test_timeout_s is aliased so pytest does not collect the helper
# itself as a test function.
from tests.helpers import (
    DEFAULT_TEST_TIMEOUT_S,
    TEST_TIMEOUT_ENV,
    alarm_timeout,
    alarm_usable,
)
from tests.helpers import test_timeout_s as configured_timeout_s

needs_sigalrm = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="platform lacks SIGALRM"
)


class TestConfiguration:
    def test_default_budget(self, monkeypatch):
        monkeypatch.delenv(TEST_TIMEOUT_ENV, raising=False)
        assert configured_timeout_s() == DEFAULT_TEST_TIMEOUT_S

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TEST_TIMEOUT_ENV, "7.5")
        assert configured_timeout_s() == 7.5

    def test_zero_disables(self):
        assert not alarm_usable(0)
        assert not alarm_usable(-1)

    @needs_sigalrm
    def test_usable_on_main_thread(self):
        assert alarm_usable(1.0)

    def test_not_usable_off_main_thread(self):
        import threading

        seen = {}
        thread = threading.Thread(
            target=lambda: seen.setdefault("usable", alarm_usable(1.0))
        )
        thread.start()
        thread.join()
        assert seen["usable"] is False


class TestAlarmTimeout:
    @needs_sigalrm
    def test_fires_on_overrun(self):
        with pytest.raises(TimeoutError, match="global timeout"):
            with alarm_timeout(0.05):
                time.sleep(5)

    @needs_sigalrm
    def test_fast_body_unaffected(self):
        with alarm_timeout(5.0):
            pass

    def test_disabled_budget_is_a_noop(self):
        with alarm_timeout(0):
            pass

    @needs_sigalrm
    def test_previous_handler_and_timer_restored(self):
        sentinel = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            with alarm_timeout(5.0):
                assert signal.getsignal(signal.SIGALRM) is not sentinel
            assert signal.getsignal(signal.SIGALRM) is sentinel
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous)

    @needs_sigalrm
    def test_nested_timeouts_inner_fires_first(self):
        with pytest.raises(TimeoutError):
            with alarm_timeout(30.0):
                with alarm_timeout(0.05):
                    time.sleep(5)


@needs_sigalrm
def test_guard_kills_a_hung_test_end_to_end(tmp_path):
    """A sleeping test under a 1 s budget fails loudly instead of hanging.

    The child suite installs the guard exactly the way both repo
    conftests do — a ``pytest_runtest_call`` wrapper around
    ``tests.helpers.alarm_timeout`` — which also proves the helper is
    importable by an out-of-tree consumer (as ``benchmarks/conftest.py``
    is).
    """
    repo_root = Path(__file__).resolve().parent.parent
    (tmp_path / "conftest.py").write_text(
        "import pytest\n"
        "from tests.helpers import alarm_timeout\n"
        "\n"
        "@pytest.hookimpl(wrapper=True)\n"
        "def pytest_runtest_call(item):\n"
        "    with alarm_timeout():\n"
        "        return (yield)\n"
    )
    test_file = tmp_path / "test_hang.py"
    test_file.write_text(
        "import time\n"
        "def test_sleeps_too_long():\n"
        "    time.sleep(30)\n"
    )
    env = dict(os.environ)
    env[TEST_TIMEOUT_ENV] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [str(repo_root / "src"), str(repo_root), env.get("PYTHONPATH")],
        )
    )
    started = time.monotonic()
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
            str(test_file),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    elapsed = time.monotonic() - started
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "TimeoutError" in proc.stdout
    assert "global timeout" in proc.stdout
    assert elapsed < 30, "guard did not interrupt the sleeping test"

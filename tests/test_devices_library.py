"""The seven study devices must match paper Figure 1's facts."""

import pytest

from repro.devices import (
    all_devices,
    device_by_name,
    example_8q_device,
    google_bristlecone_72,
    ibmq5_tenerife,
    ibmq14_melbourne,
    ibmq16_rueschlikon,
    rigetti_agave,
    rigetti_aspen1,
    rigetti_aspen3,
    umd_trapped_ion,
)
from repro.devices.gatesets import VendorFamily

# (factory, qubits, 2Q gate count, coherence us) straight from Figure 1.
FIGURE1 = [
    (ibmq5_tenerife, 5, 6, 40.0),
    (ibmq14_melbourne, 14, 18, 30.0),
    (ibmq16_rueschlikon, 16, 22, 40.0),
    (rigetti_agave, 4, 3, 15.0),
    (rigetti_aspen1, 16, 18, 20.0),
    (rigetti_aspen3, 16, 18, 20.0),
    (umd_trapped_ion, 5, 10, 1.5e6),
]


@pytest.mark.parametrize("factory,qubits,edges,coherence", FIGURE1)
def test_figure1_characteristics(factory, qubits, edges, coherence):
    device = factory()
    assert device.num_qubits == qubits
    assert device.topology.num_edges() == edges
    assert device.coherence_time_us == coherence
    assert device.topology.is_connected()


@pytest.mark.parametrize("factory,qubits,edges,coherence", FIGURE1)
def test_average_errors_near_figure1(factory, qubits, edges, coherence):
    # Synthetic calibrations are centred on the published averages.
    paper = {
        "IBM Q5 Tenerife": (0.002, 0.0476, 0.0621),
        "IBM Q14 Melbourne": (0.0119, 0.0795, 0.0909),
        "IBM Q16 Rueschlikon": (0.0022, 0.0714, 0.0415),
        "Rigetti Agave": (0.0368, 0.108, 0.1637),
        "Rigetti Aspen1": (0.0343, 0.0892, 0.0556),
        "Rigetti Aspen3": (0.0379, 0.0537, 0.0665),
        "UMD Trapped Ion": (0.002, 0.010, 0.006),
    }
    device = factory()
    err_1q, err_2q, err_ro = paper[device.name]
    cal = device.calibration()
    assert cal.average_single_qubit_error() == pytest.approx(err_1q, rel=0.5)
    assert cal.average_two_qubit_error() == pytest.approx(err_2q, rel=0.5)
    assert cal.average_readout_error() == pytest.approx(err_ro, rel=0.5)


class TestVendorsAndTechnology:
    def test_vendor_families(self):
        assert ibmq5_tenerife().vendor is VendorFamily.IBM
        assert rigetti_agave().vendor is VendorFamily.RIGETTI
        assert umd_trapped_ion().vendor is VendorFamily.UMDTI

    def test_technology(self):
        assert umd_trapped_ion().technology == "trapped ion"
        assert ibmq14_melbourne().technology == "superconducting"

    def test_ibm_directed(self):
        topo = ibmq5_tenerife().topology
        assert topo.directed
        assert topo.supports_direction(1, 0)
        assert not topo.supports_direction(0, 1)

    def test_umdti_fully_connected(self):
        assert umd_trapped_ion().topology.is_fully_connected()

    def test_tenerife_triangle(self):
        # Qubits 0, 1, 2 form the triangle the 3Q benchmarks fit.
        topo = ibmq5_tenerife().topology
        assert topo.are_coupled(0, 1)
        assert topo.are_coupled(1, 2)
        assert topo.are_coupled(0, 2)


class TestLookup:
    def test_all_devices_order(self):
        names = [d.name for d in all_devices()]
        assert names[0] == "IBM Q5 Tenerife"
        assert names[-1] == "UMD Trapped Ion"

    def test_device_by_name_partial(self):
        assert device_by_name("melbourne").num_qubits == 14
        assert device_by_name("Aspen1").name == "Rigetti Aspen1"

    def test_device_by_name_unknown(self):
        with pytest.raises(KeyError, match="known devices"):
            device_by_name("sycamore")

    def test_on_day_view(self):
        base = ibmq14_melbourne()
        later = base.on_day(5)
        assert later.day == 5
        assert later.calibration().day == 5
        assert base.calibration(5).two_qubit_error == (
            later.calibration().two_qubit_error
        )


class TestAuxiliaryDevices:
    def test_example_device_reliabilities(self):
        device = example_8q_device()
        cal = device.calibration()
        assert cal.edge_reliability(0, 1) == pytest.approx(0.9)
        assert cal.edge_reliability(2, 6) == pytest.approx(0.7)
        # Static model: same data every day.
        assert device.calibration(5).two_qubit_error == cal.two_qubit_error

    def test_bristlecone_shape(self):
        device = google_bristlecone_72()
        assert device.num_qubits == 72
        assert device.topology.are_coupled(0, 12)

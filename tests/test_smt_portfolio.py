"""Tests for the anytime mapper portfolio (greedy / annealing / race).

Three properties anchor the whole PR and each gets a hypothesis suite:

* **Seeded-schedule determinism** — the annealer's walk is a pure
  function of ``(problem, start, seed, steps)``, never of wall clock.
* **Relabeling invariance** — ``greedy_assignment`` orders variables by
  structural keys, so permuting program-qubit labels cannot change the
  achieved objective (when score masses are distinct, which random
  float scores are almost surely).
* **Anytime monotonicity** — ``Solution.trajectory`` objectives are
  strictly increasing by construction.
"""

import itertools
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    MAPPER_METHODS,
    AssignmentProblem,
    MaxMinSolver,
    PortfolioSolver,
)
from repro.smt.portfolio import (
    SimulatedAnnealingRefiner,
    exhaustive_assignment,
    greedy_assignment,
)


def symmetric_scores(n: int, rng: np.random.Generator) -> np.ndarray:
    mat = rng.uniform(0.3, 0.99, (n, n))
    mat = (mat + mat.T) / 2
    np.fill_diagonal(mat, 1.0)
    return mat


def random_problem(seed: int) -> AssignmentProblem:
    """A random chain-plus-extras instance, like the solver tests use."""
    rng = np.random.default_rng(seed)
    num_vars = int(rng.integers(2, 6))
    num_values = int(rng.integers(num_vars, 9))
    problem = AssignmentProblem(num_vars, num_values)
    scores = symmetric_scores(num_values, rng)
    for a in range(num_vars - 1):
        problem.add_pair_term(a, a + 1, scores)
    extras = list(itertools.combinations(range(num_vars), 2))[num_vars:]
    for a, b in extras[: int(rng.integers(0, len(extras) + 1))]:
        problem.add_pair_term(a, b, scores)
    problem.add_unary_term(0, rng.uniform(0.5, 0.99, num_values))
    return problem


def brute_force_maxmin(problem: AssignmentProblem) -> float:
    return max(
        problem.min_score(perm)
        for perm in itertools.permutations(
            range(problem.num_values), problem.num_vars
        )
    )


class TestGreedyAssignment:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_deterministic(self, seed):
        problem = random_problem(seed)
        first = greedy_assignment(problem)
        problem.validate(first)
        assert greedy_assignment(problem) == first

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_objective_invariant_under_relabeling(self, seed):
        """Permuting variable labels cannot change the greedy objective.

        The variable order key (degree, incident score mass) and the
        value tie-break are label-free; per-term random score matrices
        make mass ties measure-zero (the invariance is only promised
        for distinct masses — a shared matrix ties interior chain
        variables), so the relabeled run places corresponding variables
        identically.
        """
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 6))
        num_values = int(rng.integers(num_vars, 9))
        problem = AssignmentProblem(num_vars, num_values)
        for a in range(num_vars - 1):
            problem.add_pair_term(a, a + 1, symmetric_scores(num_values, rng))
        for var in range(num_vars):
            problem.add_unary_term(var, rng.uniform(0.5, 0.99, num_values))
        rng = np.random.default_rng(seed + 424_242)
        perm = [int(v) for v in rng.permutation(problem.num_vars)]
        relabeled = AssignmentProblem(problem.num_vars, problem.num_values)
        for term in problem.pair_terms:
            relabeled.add_pair_term(
                perm[term.var_u], perm[term.var_v], term.scores
            )
        for term in problem.unary_terms:
            relabeled.add_unary_term(perm[term.var], term.scores)
        original = problem.min_score(greedy_assignment(problem))
        permuted = relabeled.min_score(greedy_assignment(relabeled))
        assert permuted == pytest.approx(original)


class TestExhaustive:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force_optimum(self, seed):
        problem = random_problem(seed)
        assignment, objective = exhaustive_assignment(problem)
        problem.validate(assignment)
        assert objective == pytest.approx(brute_force_maxmin(problem))
        assert objective == pytest.approx(problem.min_score(assignment))


class TestAnnealer:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 100))
    def test_seeded_schedule_determinism(self, problem_seed, anneal_seed):
        """Same (problem, start, seed, steps) -> bit-identical result."""
        problem = random_problem(problem_seed)
        start = greedy_assignment(problem)
        runs = [
            SimulatedAnnealingRefiner(
                problem, seed=anneal_seed, steps=400
            ).refine(start)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        best, objective, steps_done, finished = runs[0]
        problem.validate(best)
        assert objective == pytest.approx(problem.min_score(best))
        assert steps_done == 400 and finished

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_start(self, seed):
        problem = random_problem(seed)
        start = greedy_assignment(problem)
        _, objective, _, _ = SimulatedAnnealingRefiner(
            problem, seed=seed, steps=300
        ).refine(start)
        assert objective >= problem.min_score(start) - 1e-12

    def test_expired_deadline_truncates_not_crashes(self):
        problem = random_problem(1)
        start = greedy_assignment(problem)
        best, objective, steps_done, finished = SimulatedAnnealingRefiner(
            problem, seed=0, steps=500
        ).refine(start, deadline=time.monotonic() - 1.0)
        assert not finished
        assert steps_done == 0
        problem.validate(best)
        assert objective == pytest.approx(problem.min_score(start))


class TestPortfolioRace:
    @pytest.mark.parametrize("seed", range(8))
    def test_bit_identical_to_cold_exact_when_exact_finishes(self, seed):
        problem = random_problem(seed)
        cold = MaxMinSolver(problem).solve()
        assert cold.stats.proven_optimal
        raced = PortfolioSolver(problem).solve()
        assert raced.stats.proven_optimal
        assert raced.assignment == cold.assignment
        assert raced.objective == cold.objective
        assert raced.method == "exact"
        assert raced.bound_shared

    @pytest.mark.parametrize("seed", range(4))
    def test_warm_hint_is_certificate_only(self, seed):
        """Any valid hint may skip work but never changes the answer."""
        problem = random_problem(seed)
        cold = PortfolioSolver(problem).solve()
        rng = np.random.default_rng(seed + 7)
        for _ in range(3):
            hint = tuple(
                int(v)
                for v in rng.permutation(problem.num_values)[
                    : problem.num_vars
                ]
            )
            warm = PortfolioSolver(problem).solve(warm_hint=hint)
            assert warm.assignment == cold.assignment
            assert warm.objective == cold.objective

    def test_solver_run_names_and_shapes(self):
        problem = random_problem(0)
        solution = PortfolioSolver(problem).solve()
        names = [run.name for run in solution.runs]
        assert names[0] == "greedy"
        assert names[-1] == "exact"
        assert set(names) <= {"greedy", "exhaustive", "annealing", "exact"}
        for run in solution.runs:
            assert run.time_s >= 0
            assert run.nodes >= 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_trajectory_monotone_strictly_increasing(self, seed):
        problem = random_problem(seed)
        solution = PortfolioSolver(problem).solve()
        objectives = [event.objective for event in solution.trajectory]
        assert objectives, "the race must record at least the greedy bound"
        assert all(b > a for a, b in zip(objectives, objectives[1:]))
        elapsed = [event.elapsed_s for event in solution.trajectory]
        assert all(b >= a for a, b in zip(elapsed, elapsed[1:]))
        assert solution.trajectory[-1].objective == pytest.approx(
            solution.objective
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_heuristic_only_mode_matches_optimum_on_tiny_instances(
        self, seed
    ):
        # include_exact=False is --mapper=heuristic; tiny instances take
        # the exhaustive branch, so the heuristic answer IS the optimum
        # even though nothing is proven.
        problem = random_problem(seed)
        solution = PortfolioSolver(problem, include_exact=False).solve()
        problem.validate(solution.assignment)
        assert solution.method == "heuristic"
        assert not solution.stats.proven_optimal
        assert not solution.degraded
        assert solution.objective == pytest.approx(
            brute_force_maxmin(problem)
        )
        assert "exact" not in {run.name for run in solution.runs}

    def test_exhausted_budget_degrades_to_anytime_answer(self):
        # With the whole wall budget already spent, the exact stage is
        # skipped entirely: the race returns its best heuristic answer,
        # flagged method="heuristic" and NOT degraded.
        problem = random_problem(2)
        solver = PortfolioSolver(problem, time_limit_s=1e-9)
        solution = solver.solve()
        problem.validate(solution.assignment)
        assert solution.method == "heuristic"
        assert not solution.degraded
        assert not solution.stats.proven_optimal
        assert "exact" not in {run.name for run in solution.runs}

    def test_mapper_method_names(self):
        assert MAPPER_METHODS == ("exact", "portfolio", "heuristic")

"""Tests for quaternion <-> SU(2) conversions."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ir import gate_matrix
from repro.rotations import (
    Quaternion,
    quaternion_to_unitary,
    rotation_unitary,
    unitary_to_quaternion,
)

angles = st.floats(
    min_value=-4 * math.pi,
    max_value=4 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)
axes = st.tuples(
    st.floats(min_value=-1, max_value=1),
    st.floats(min_value=-1, max_value=1),
    st.floats(min_value=-1, max_value=1),
).filter(lambda v: math.sqrt(sum(c * c for c in v)) > 1e-3)
rotations = st.builds(
    lambda axis, theta: Quaternion.from_axis_angle(axis, theta), axes, angles
)


class TestQuaternionToUnitary:
    def test_identity(self):
        np.testing.assert_allclose(
            quaternion_to_unitary(Quaternion.identity()), np.eye(2)
        )

    @pytest.mark.parametrize("axis", ["x", "y", "z"])
    def test_matches_rotation_unitary(self, axis):
        theta = 0.77
        q = getattr(Quaternion, f"r{axis}")(theta)
        np.testing.assert_allclose(
            quaternion_to_unitary(q),
            rotation_unitary(axis, theta),
            atol=1e-12,
        )

    def test_rotation_unitary_matches_gate_matrix(self):
        theta = 1.1
        for axis in "xyz":
            np.testing.assert_allclose(
                rotation_unitary(axis, theta),
                gate_matrix(f"r{axis}", (theta,)),
                atol=1e-12,
            )

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            rotation_unitary("w", 1.0)

    @given(rotations)
    def test_output_is_special_unitary(self, q):
        mat = quaternion_to_unitary(q)
        np.testing.assert_allclose(
            mat @ mat.conj().T, np.eye(2), atol=1e-9
        )
        assert np.linalg.det(mat) == pytest.approx(1.0, abs=1e-9)


class TestUnitaryToQuaternion:
    def test_pauli_x_maps_to_rx_pi(self):
        q = unitary_to_quaternion(gate_matrix("x"))
        assert q.approx_equal(Quaternion.rx(math.pi))

    def test_hadamard(self):
        q = unitary_to_quaternion(gate_matrix("h"))
        expected = Quaternion.from_axis_angle((1, 0, 1), math.pi)
        assert q.approx_equal(expected)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            unitary_to_quaternion(np.eye(4))

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            unitary_to_quaternion(np.array([[1, 0], [0, 2]]))

    @given(rotations)
    def test_roundtrip(self, q):
        back = unitary_to_quaternion(quaternion_to_unitary(q))
        assert back.approx_equal(q, atol=1e-6)

    @given(rotations, rotations)
    def test_multiplication_homomorphism(self, a, b):
        # Quaternion product corresponds to matrix product.
        product_mat = quaternion_to_unitary(b) @ quaternion_to_unitary(a)
        expected = quaternion_to_unitary(b * a)
        # Equal up to a global sign (SU(2) double cover).
        close = np.allclose(product_mat, expected, atol=1e-8) or np.allclose(
            product_mat, -expected, atol=1e-8
        )
        assert close

"""Differential-equivalence battery gating the pass manager.

For every preset x study device x fitting suite benchmark, the
optimized compile is checked against an unoptimized compile of the same
cell:

* **distribution preservation** — the compiled program's ideal output
  distribution matches the unoptimized program's (itself contract-
  checked against the source circuit), whenever the compacted circuits
  are small enough to simulate;
* **2Q monotonicity** — the optimized program never carries more 2Q
  gates than the unoptimized one, on every cell.

Alongside the battery live the back-compat proofs that make the preset
opt-in: ``opt="none"`` produces byte-identical cache keys, sweep task
digests, and emitted programs, so every artifact and journal written
before the pass manager stays reachable.
"""

from __future__ import annotations

import pytest

from repro.compiler import OptimizationLevel
from repro.contracts.checks import DEFAULT_SEMANTIC_QUBIT_LIMIT, compact_circuit
from repro.devices import all_devices
from repro.experiments.runner import artifact_key, compile_with, fits
from repro.programs import standard_suite
from repro.sim.statevector import ideal_distribution
from repro.verify import distribution_distance

LEVEL = OptimizationLevel.OPT_1QCN
DEVICES = all_devices(day=0)
SUITE = [(b.name, b.build()[0]) for b in standard_suite()]

CELLS = [
    pytest.param(device, bench_name, circuit, id=f"{device.name}-{bench_name}")
    for device in DEVICES
    for bench_name, circuit in SUITE
    if fits(circuit, device)
]

_plain_cache = {}


def _plain_program(device, bench_name, circuit):
    """The unoptimized compile of a cell, computed once per cell."""
    key = (device.name, bench_name)
    if key not in _plain_cache:
        _plain_cache[key] = compile_with(circuit, device, LEVEL)
    return _plain_cache[key]


@pytest.mark.parametrize("preset", ["basic", "full"])
@pytest.mark.parametrize("device,bench_name,circuit", CELLS)
def test_preset_preserves_distribution_and_two_qubit_count(
    preset, device, bench_name, circuit
):
    plain = _plain_program(device, bench_name, circuit)
    optimized = compile_with(
        circuit, device, LEVEL, contracts="strict", opt=preset
    )
    assert optimized.opt == preset
    # 2Q monotonicity holds on every cell, simulable or not.
    assert (
        optimized.circuit.num_two_qubit_gates()
        <= plain.circuit.num_two_qubit_gates()
    )
    src = compact_circuit(plain.circuit)
    dst = compact_circuit(optimized.circuit)
    if max(src.num_qubits, dst.num_qubits) > DEFAULT_SEMANTIC_QUBIT_LIMIT:
        return
    assert (
        distribution_distance(ideal_distribution(src), ideal_distribution(dst))
        < 1e-6
    )


@pytest.mark.parametrize("device,bench_name,circuit", CELLS)
def test_opt_none_program_is_byte_identical(device, bench_name, circuit):
    """The default path is untouched: opt="none" emits the same bytes
    as a compile that never heard of the pass manager."""
    plain = _plain_program(device, bench_name, circuit)
    explicit = compile_with(circuit, device, LEVEL, opt="none")
    assert explicit.executable() == plain.executable()
    assert explicit.opt == "none"
    assert explicit.opt_stats == ()


class TestCacheKeyBackCompat:
    def _cell(self):
        device = DEVICES[0]
        circuit = SUITE[0][1]
        return device, circuit

    def test_opt_none_key_matches_default_signature(self):
        device, circuit = self._cell()
        assert artifact_key(circuit, device, LEVEL) == artifact_key(
            circuit, device, LEVEL, opt="none"
        )

    def test_engaged_presets_address_distinct_artifacts(self):
        device, circuit = self._cell()
        keys = {
            artifact_key(circuit, device, LEVEL, opt=preset)
            for preset in ("none", "basic", "full")
        }
        assert len(keys) == 3

    def test_vendor_baselines_ignore_opt(self):
        """The pass manager is TriQ-only; baseline compiler keys must
        not fork on a knob that cannot affect them."""
        device, circuit = self._cell()
        assert artifact_key(circuit, device, "Qiskit") == artifact_key(
            circuit, device, "Qiskit", opt="full"
        )

    def test_unknown_preset_rejected(self):
        device, circuit = self._cell()
        with pytest.raises(ValueError, match="unknown optimization preset"):
            artifact_key(circuit, device, LEVEL, opt="max")


class TestSweepPlanBackCompat:
    def test_opt_none_keeps_run_id_and_digests(self):
        from repro.experiments.plan import build_sweep_plan

        device = DEVICES[0]
        default_plan = build_sweep_plan(device, [LEVEL], benchmarks=["bv4"])
        none_plan = build_sweep_plan(
            device, [LEVEL], benchmarks=["bv4"], opt="none"
        )
        full_plan = build_sweep_plan(
            device, [LEVEL], benchmarks=["bv4"], opt="full"
        )
        assert default_plan.run_id == none_plan.run_id
        assert default_plan.digests == none_plan.digests
        assert all(task.opt is None for task in none_plan.tasks)
        assert full_plan.run_id != default_plan.run_id
        assert full_plan.digests != default_plan.digests
        assert all(task.opt == "full" for task in full_plan.tasks)


class TestFuzzSamplesPresets:
    def test_sampled_presets_are_deterministic_in_seed(self):
        """opt=None samples a preset per circuit from the circuit's own
        RNG — after the circuit draws, so the generated circuits match a
        fixed-preset campaign's bit for bit."""
        import random

        from repro.contracts.fuzz import _SEED_STRIDE, random_circuit

        seen = set()
        for index in range(8):
            rng = random.Random(0 * _SEED_STRIDE + index)
            num_qubits = rng.randint(2, 4)
            num_gates = rng.randint(1, 12)
            random_circuit(rng, num_qubits, num_gates)
            seen.add(rng.choice(("none", "basic", "full")))
        assert len(seen) > 1  # sampling actually varies the preset

    def test_fuzz_campaign_with_sampling_finds_nothing(self):
        from repro.contracts.fuzz import FuzzConfig, run_fuzz

        report = run_fuzz(
            FuzzConfig(
                circuits=6,
                devices=["IBM Q5 Tenerife"],
                compilers=[LEVEL],
                opt=None,
            )
        )
        assert report.attempts == 6
        assert report.ok, [f.error for f in report.findings]

    def test_reproducer_roundtrips_opt(self, tmp_path):
        import json

        from repro.contracts.fuzz import (
            FuzzFinding,
            circuit_to_payload,  # noqa: F401 - exercised via write
            write_reproducer,
        )
        from repro.ir.circuit import Circuit

        c = Circuit(2)
        c.add("h", (0,))
        c.measure_all()
        finding = FuzzFinding(
            kind="differential",
            device="IBM Q5 Tenerife",
            compiler="TriQ-1QOptCN",
            circuit_index=0,
            error="synthetic",
            original_instructions=len(c.instructions),
            shrunk_instructions=len(c.instructions),
        )
        path = write_reproducer(
            tmp_path / "repro.json", c, finding, "strict", 1e-6,
            mapper="exact", opt="full",
        )
        payload = json.loads(path.read_text())
        assert payload["opt"] == "full"

"""Golden parity tests for the :mod:`repro.api` library surface.

The API is a refactor of the CLI's command paths into plain functions;
these tests lock the refactor down: emitted executables,
content-addressed cache keys, checkpoint run ids and journal task
digests, and Monte-Carlo success floats must be byte-identical to what
the pre-API engine calls (the exact code the CLI used to inline)
produce — across the full seven-device grid.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.cache import open_cache
from repro.cache.keys import compile_key
from repro.compiler import OptimizationLevel
from repro.devices import all_devices, device_by_name
from repro.experiments.journal import SweepJournal
from repro.experiments.parallel import run_sweep
from repro.experiments.runner import (
    _TRIQ_OPTIONS,
    artifact_key,
    compile_with_cache,
)
from repro.programs import benchmark_by_name
from repro.sim import monte_carlo_success_rate

HS2 = "HS2"  # two qubits: the one suite benchmark that fits all seven


class TestCompileParity:
    def test_seven_device_grid_byte_identical(self):
        """api.compile == the engine call the CLI always made, everywhere."""
        circuit, _ = benchmark_by_name(HS2).build()
        for device in all_devices(day=0):
            reference, _ = compile_with_cache(
                circuit, device, OptimizationLevel.OPT_1QCN, day=0
            )
            result = api.compile(HS2, device=device, day=0)
            assert result.executable == reference.executable()
            assert result.two_qubit_gates == reference.two_qubit_gate_count()
            assert result.one_qubit_pulses == reference.one_qubit_pulse_count()
            assert result.depth == reference.depth()
            assert result.num_swaps == reference.num_swaps
            assert result.device == device.name

    def test_cache_key_matches_engine_key(self):
        """The provenance key is the engine's artifact key, bit for bit."""
        circuit, _ = benchmark_by_name(HS2).build()
        for device in all_devices(day=0):
            result = api.compile(HS2, device=device, day=0)
            assert result.cache_key == artifact_key(
                circuit, device, OptimizationLevel.OPT_1QCN, day=0
            )
            assert result.cache_key == compile_key(
                circuit, device, "TriQ-1QOptCN", 0, _TRIQ_OPTIONS
            )

    def test_device_name_resolution_matches_object(self):
        by_name = api.compile(HS2, device="tenerife")
        by_object = api.compile(HS2, device=device_by_name("tenerife", day=0))
        assert by_name.executable == by_object.executable
        assert by_name.cache_key == by_object.cache_key

    def test_compile_cache_key_no_compile(self):
        key = api.compile_cache_key(HS2, device="tenerife")
        assert key == api.compile(HS2, device="tenerife").cache_key

    def test_cache_roundtrip_flags_hit(self, tmp_path):
        cache = open_cache(tmp_path / "cache")
        cold = api.compile(HS2, device="tenerife", cache=cache)
        warm = api.compile(HS2, device="tenerife", cache=cache)
        assert cold.cache_hit is False
        assert warm.cache_hit is True
        assert warm.executable == cold.executable
        no_cache = api.compile(HS2, device="tenerife")
        assert no_cache.cache_hit is None

    def test_cache_dir_opens_a_store(self, tmp_path):
        first = api.compile(HS2, device="agave", cache_dir=tmp_path / "c")
        second = api.compile(HS2, device="agave", cache_dir=tmp_path / "c")
        assert first.cache_hit is False and second.cache_hit is True

    def test_payload_is_json_safe(self):
        result = api.compile(HS2, device="tenerife")
        payload = json.loads(json.dumps(result.to_payload()))
        assert payload["executable"] == result.executable
        assert payload["cache_key"] == result.cache_key

    def test_scaffold_source_compiles(self):
        source = (
            "module main(qbit q[2]) { H(q[0]); CNOT(q[0], q[1]); "
            "MeasZ(q[0]); MeasZ(q[1]); }"
        )
        result = api.compile(scaffold=source, device="tenerife")
        assert result.benchmark is None and result.correct is None
        assert result.executable

    def test_program_source_is_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            api.build_program()
        with pytest.raises(ValueError, match="exactly one"):
            api.build_program(benchmark=HS2, scaffold="int main(){}")


class TestRunParity:
    def test_success_floats_bit_identical(self):
        """api.run repeats the exact historical estimator call."""
        device = device_by_name("tenerife", day=0)
        circuit, correct = benchmark_by_name(HS2).build()
        program, _ = compile_with_cache(
            circuit, device, OptimizationLevel.OPT_1QCN, day=0
        )
        reference = monte_carlo_success_rate(
            program.circuit, device, correct, day=0, fault_samples=25
        )
        result = api.run(HS2, device="tenerife", fault_samples=25)
        assert result.success_rate == reference.success_rate
        assert result.ideal_rate == reference.ideal_rate
        assert result.no_fault_probability == reference.no_fault_probability
        assert result.esp == reference.esp
        assert result.fault_samples == reference.fault_samples
        assert result.compiled.benchmark == HS2

    def test_run_requires_known_correct_answer(self):
        with pytest.raises(TypeError):
            api.run(device="tenerife")  # benchmark is required

    def test_run_payload_nests_compile(self):
        result = api.run(HS2, device="tenerife", fault_samples=10)
        payload = json.loads(json.dumps(result.to_payload()))
        assert payload["compiled"]["benchmark"] == HS2
        assert payload["fault_samples"] == 10


class TestSweepParity:
    SPEC = dict(benchmarks=["BV4", HS2], with_success=False, day=0)

    def test_run_id_journal_and_measurements_match_engine(self, tmp_path):
        cache = open_cache(tmp_path / "cache")
        reference = run_sweep(
            device_by_name("tenerife", day=0),
            [OptimizationLevel.N],
            cache=cache,
            **self.SPEC,
        )
        ref_tasks = [
            r["task"] for r in SweepJournal(reference.journal_path).records()
        ]
        result = api.sweep("tenerife", "N", cache=cache, **self.SPEC)
        assert result.run_id == reference.run_id
        assert result.journal_path == reference.journal_path
        got_tasks = [
            r["task"] for r in SweepJournal(result.journal_path).records()
        ]
        assert got_tasks == ref_tasks
        assert len(result.measurements) == len(reference.measurements)
        for mine, theirs in zip(result.measurements, reference.measurements):
            # The warm pass hits the cache the cold pass filled; all
            # science fields (stored compile time included) must match.
            assert dataclasses.replace(
                mine, cache_hit=None
            ) == dataclasses.replace(theirs, cache_hit=None)
            assert mine.cache_hit is True

    def test_compiler_spec_accepts_strings_and_levels(self, tmp_path):
        cache = open_cache(tmp_path / "cache")
        by_string = api.sweep("tenerife", "N", cache=cache, **self.SPEC)
        by_level = api.sweep(
            "tenerife", [OptimizationLevel.N], cache=cache, **self.SPEC
        )
        assert by_string.run_id == by_level.run_id

    def test_payload_carries_metrics_and_failures(self, tmp_path):
        result = api.sweep(
            "tenerife", "N", cache_dir=tmp_path / "cache", **self.SPEC
        )
        payload = json.loads(json.dumps(result.to_payload()))
        assert [m["benchmark"] for m in payload["measurements"]] == [
            "BV4", HS2,
        ]
        assert payload["failures"] == []
        assert payload["run_id"] == result.run_id
        if result.report.metrics is not None:
            assert "repro_sweep" in payload["metrics_prom"]


class TestResolvers:
    def test_resolve_level_aliases(self):
        assert api.resolve_level("1QOptCN") is OptimizationLevel.OPT_1QCN
        assert api.resolve_level("triq-n") is OptimizationLevel.N
        assert (
            api.resolve_level(OptimizationLevel.OPT_1Q)
            is OptimizationLevel.OPT_1Q
        )

    def test_resolve_level_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown optimization level"):
            api.resolve_level("O3")

    def test_resolve_compilers_mixed(self):
        assert api.resolve_compilers("N, qiskit ,QUIL") == [
            OptimizationLevel.N, "Qiskit", "Quil",
        ]
        assert api.resolve_compilers([OptimizationLevel.N, "quil"]) == [
            OptimizationLevel.N, "Quil",
        ]

    def test_resolve_compilers_rejects_empty(self):
        with pytest.raises(ValueError, match="no compilers"):
            api.resolve_compilers(" , ")


class TestCheck:
    def test_small_grid_is_clean(self):
        result = api.check(
            devices=["tenerife"], benchmarks=[HS2], levels=["N", "1QOptCN"]
        )
        assert result.cells == 2
        assert result.ok
        payload = json.loads(json.dumps(result.to_payload()))
        assert payload["ok"] is True and payload["cells"] == 2

    def test_oversized_benchmark_is_skipped_not_an_error(self):
        result = api.check(
            devices=["agave"], benchmarks=["BV8"], levels=["N"]
        )
        assert result.cells == 0 and result.ok


class TestObsIntegration:
    def test_compile_obs_artifacts(self, tmp_path):
        from repro.obs import ObsConfig, parse_prometheus

        cache = open_cache(tmp_path / "cache")
        result = api.compile(
            HS2,
            device="tenerife",
            cache=cache,
            obs=ObsConfig(trace=True, profile=False, out_dir=tmp_path / "obs"),
            obs_tag="t",
        )
        assert result.obs is not None
        assert "compile" in result.obs.span_tree
        trace = result.obs.out_dir / "t-trace.json"
        prom = result.obs.out_dir / "t-metrics.prom"
        assert trace.exists() and prom.exists()
        events = parse_prometheus(prom.read_text())[
            "repro_cache_events_total"
        ]
        assert sum(events.values()) > 0

    def test_obs_off_yields_none(self):
        assert api.compile(HS2, device="tenerife").obs is None


class TestCliThinClient:
    def test_cli_compile_stdout_is_api_executable(self, capsys):
        from repro.cli import main

        result = api.compile(HS2, device="tenerife")
        assert main(["compile", "-b", HS2, "-d", "tenerife"]) == 0
        captured = capsys.readouterr()
        assert captured.out == result.executable
        assert f"# {result.device} | {result.compiler}" in captured.err

    def test_cli_run_reports_api_floats(self, capsys):
        from repro.cli import main

        result = api.run(HS2, device="tenerife", fault_samples=10)
        code = main(
            ["run", "-b", HS2, "-d", "tenerife", "--fault-samples", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"success rate  : {result.success_rate:.4f}" in out
        assert f"ideal rate    : {result.ideal_rate:.4f}" in out

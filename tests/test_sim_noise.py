"""Tests for the Pauli fault-injection noise model."""

import numpy as np
import pytest

from tests.helpers import make_device
from repro.devices import Topology
from repro.ir import Circuit
from repro.ir.instruction import Instruction
from repro.sim.noise import (
    NoiseModel,
    instruction_error_probability,
)


def calibration():
    return make_device(
        Topology.line(3),
        two_qubit_error=0.1,
        single_qubit_error=0.01,
        readout_error=0.05,
    ).calibration()


class TestErrorProbabilities:
    def test_virtual_z_is_free(self):
        cal = calibration()
        for name, params in (("rz", (0.3,)), ("u1", (0.3,)), ("t", ()),
                             ("s", ()), ("z", ())):
            inst = Instruction(name, (0,), params)
            assert instruction_error_probability(inst, cal) == 0.0

    def test_single_pulse_rate(self):
        cal = calibration()
        inst = Instruction("u2", (0,), (0.0, 0.1))
        assert instruction_error_probability(inst, cal) == pytest.approx(0.01)

    def test_u3_counts_two_pulses(self):
        cal = calibration()
        inst = Instruction("u3", (0,), (0.1, 0.2, 0.3))
        assert instruction_error_probability(inst, cal) == pytest.approx(
            1 - 0.99**2
        )

    def test_two_qubit_uses_edge_rate(self):
        cal = calibration()
        inst = Instruction("cx", (0, 1))
        assert instruction_error_probability(inst, cal) == pytest.approx(0.1)

    def test_swap_counts_three_gates(self):
        cal = calibration()
        inst = Instruction("swap", (1, 2))
        assert instruction_error_probability(inst, cal) == pytest.approx(
            1 - 0.9**3
        )

    def test_measure_and_barrier_free_here(self):
        cal = calibration()
        assert instruction_error_probability(
            Instruction("measure", (0,), (), (0,)), cal
        ) == 0.0
        assert instruction_error_probability(
            Instruction("barrier", ()), cal
        ) == 0.0


class TestNoiseModel:
    def device(self):
        return make_device(
            Topology.line(3),
            two_qubit_error=0.1,
            single_qubit_error=0.01,
            readout_error=0.05,
        )

    def test_locations_skip_free_gates(self):
        circuit = Circuit(3).h(0).rz(0.3, 0).cx(0, 1).measure_all()
        model = NoiseModel.from_device(self.device(), circuit)
        assert model.total_locations() == 2  # h and cx

    def test_no_fault_probability(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        model = NoiseModel.from_device(self.device(), circuit)
        assert model.no_fault_probability() == pytest.approx(0.9 * 0.9)

    def test_readout_errors_recorded(self):
        circuit = Circuit(3).measure_all()
        model = NoiseModel.from_device(self.device(), circuit)
        assert model.readout_error[0] == pytest.approx(0.05)

    def test_sampling_deterministic_with_seeded_rng(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).h(0)
        model = NoiseModel.from_device(self.device(), circuit)
        a = model.sample_faults(np.random.default_rng(7))
        b = model.sample_faults(np.random.default_rng(7))
        assert a == b

    def test_sample_faulty_configuration_never_empty(self):
        circuit = Circuit(3).cx(0, 1)
        model = NoiseModel.from_device(self.device(), circuit)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert model.sample_faulty_configuration(rng)

    def test_fault_rate_statistics(self):
        # Empirical fault frequency must track the error probability.
        circuit = Circuit(3).cx(0, 1)
        model = NoiseModel.from_device(self.device(), circuit)
        rng = np.random.default_rng(123)
        faults = sum(bool(model.sample_faults(rng)) for _ in range(4000))
        assert faults / 4000 == pytest.approx(0.1, abs=0.02)

    def test_two_qubit_faults_touch_gate_qubits_only(self):
        circuit = Circuit(3).cx(1, 2)
        model = NoiseModel.from_device(self.device(), circuit)
        rng = np.random.default_rng(5)
        for _ in range(50):
            for fault in model.sample_faulty_configuration(rng):
                for pauli in fault.paulis:
                    assert pauli.qubits[0] in (1, 2)

    def test_injections_format(self):
        circuit = Circuit(3).cx(0, 1)
        model = NoiseModel.from_device(self.device(), circuit)
        rng = np.random.default_rng(2)
        faults = model.sample_faulty_configuration(rng)
        injections = model.faults_as_injections(faults)
        position, inst = injections[0]
        assert position == 0
        assert inst.name in ("x", "y", "z")

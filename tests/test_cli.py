"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_level_aliases(self):
        args = build_parser().parse_args(
            ["compile", "-b", "BV4", "-d", "umd", "-l", "1qoptcn"]
        )
        assert args.level.value == "TriQ-1QOptCN"

    def test_bad_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compile", "-b", "BV4", "-d", "umd", "-l", "turbo"]
            )

    def test_benchmark_and_scaffold_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compile", "-b", "BV4", "-f", "x.scaffold", "-d", "umd"]
            )


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "IBM Q14 Melbourne" in out
        assert "UMD Trapped Ion" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "BV8" in out and "QFT" in out

    def test_compile_to_stdout(self, capsys):
        assert main(["compile", "-b", "HS2", "-d", "tenerife"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OPENQASM 2.0;")

    def test_compile_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.quil"
        assert (
            main(
                ["compile", "-b", "HS2", "-d", "agave", "-o", str(target)]
            )
            == 0
        )
        assert "DECLARE ro" in target.read_text()

    def test_compile_scaffold_with_defines(self, tmp_path, capsys):
        source = tmp_path / "prog.scaffold"
        source.write_text(
            "const int N = 2;\n"
            "module main(qbit q[N]) {"
            " for (int i = 0; i < N; i++) { H(q[i]); MeasZ(q[i]); } }"
        )
        assert (
            main(
                ["compile", "-f", str(source), "-D", "N=3", "-d", "umd"]
            )
            == 0
        )
        out = capsys.readouterr().out
        # The define took effect: three classical bits are measured.
        assert "-> C2" in out
        assert "-> C3" not in out

    def test_run_reports_success(self, capsys):
        assert (
            main(
                ["run", "-b", "Toffoli", "-d", "umd",
                 "--fault-samples", "20"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "success rate" in out

    def test_run_rejects_scaffold_input(self, tmp_path, capsys):
        source = tmp_path / "prog.scaffold"
        source.write_text("module main(qbit q) { H(q); MeasZ(q); }")
        assert main(["run", "-f", str(source), "-d", "umd"]) == 2

    @pytest.mark.parametrize(
        "name", ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1"]
    )
    def test_experiments(self, name, capsys):
        assert main(["experiment", name]) == 0
        assert capsys.readouterr().out.strip()

    def test_unknown_device_errors(self):
        with pytest.raises(KeyError):
            main(["compile", "-b", "BV4", "-d", "sycamore"])


class TestContractFlags:
    def test_contracts_default_off(self):
        args = build_parser().parse_args(
            ["compile", "-b", "BV4", "-d", "umd"]
        )
        assert args.contracts == "off"

    def test_compile_with_strict_contracts(self, capsys):
        assert (
            main(
                ["compile", "-b", "HS2", "-d", "tenerife",
                 "--contracts", "strict", "--no-cache"]
            )
            == 0
        )
        assert capsys.readouterr().out.startswith("OPENQASM 2.0;")

    def test_sweep_accepts_contracts(self, capsys):
        assert (
            main(
                ["sweep", "-d", "tenerife", "-b", "BV4", "-l", "1QOpt",
                 "--no-success", "--contracts", "strict", "--no-cache"]
            )
            == 0
        )

    def test_warn_mode_reports_violations(self, capsys, monkeypatch):
        from repro.contracts import CONTRACT_FAULT_ENV

        monkeypatch.setenv(CONTRACT_FAULT_ENV, "codegen")
        assert (
            main(
                ["compile", "-b", "HS2", "-d", "tenerife",
                 "--contracts", "warn", "--no-cache"]
            )
            == 0
        )
        assert "contract violation" in capsys.readouterr().err


class TestCheckCommand:
    def test_clean_grid(self, capsys):
        assert (
            main(
                ["check", "-b", "BV4", "-d", "tenerife", "-l", "1QOpt"]
            )
            == 0
        )
        assert "0 contract violation(s)" in capsys.readouterr().err

    def test_faulted_grid_exits_nonzero(self, capsys, monkeypatch):
        from repro.contracts import CONTRACT_FAULT_ENV

        monkeypatch.setenv(CONTRACT_FAULT_ENV, "onequbit")
        assert (
            main(
                ["check", "-b", "BV4", "-d", "agave", "-l", "1QOpt"]
            )
            == 5
        )
        assert "VIOLATION" in capsys.readouterr().out


class TestFuzzCommand:
    def test_clean_campaign(self, capsys):
        assert (
            main(
                ["fuzz", "--circuits", "2", "-d", "tenerife",
                 "-l", "1QOptCN"]
            )
            == 0
        )
        assert "0 finding(s)" in capsys.readouterr().err

    def test_faulted_campaign_writes_reproducer(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.contracts import CONTRACT_FAULT_ENV

        monkeypatch.setenv(CONTRACT_FAULT_ENV, "codegen")
        assert (
            main(
                ["fuzz", "--circuits", "1", "-d", "tenerife",
                 "-l", "1QOpt", "--artifact-dir", str(tmp_path)]
            )
            == 5
        )
        out = capsys.readouterr().out
        assert "FINDING [contract]" in out
        artifacts = list(tmp_path.glob("*.json"))
        assert len(artifacts) == 1
        # Replay once the fault is gone: clean exit.
        monkeypatch.delenv(CONTRACT_FAULT_ENV)
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 0


class TestBenchCommand:
    def _args(self, tmp_path, extra=()):
        return [
            "bench", "--trials", "300", "--fault-samples", "60",
            "--repeats", "1",
            "-o", str(tmp_path / "bench.json"), *extra,
        ]

    def test_writes_report(self, tmp_path, capsys):
        import json

        assert main(self._args(tmp_path)) == 0
        report = json.loads((tmp_path / "bench.json").read_text())
        assert set(report["kernels"]) == {
            "trajectory_sampling", "trajectory_sampling_deep",
            "success_estimation", "reliability_matrix",
            "mapper_portfolio", "pass_manager",
        }
        for record in report["kernels"].values():
            assert record["speedup"] > 0
        assert "speedup" in capsys.readouterr().out

    def test_baseline_gate_passes_and_fails(self, tmp_path, capsys):
        # Gating logic only — kernel coverage is test_writes_report's
        # job, so restrict both runs to the cheapest kernel.
        import json

        fast = ["--kernels", "trajectory_sampling"]
        generous = {"schema": 1, "kernels": {
            "trajectory_sampling": {"speedup": 0.01},
        }}
        (tmp_path / "ok.json").write_text(json.dumps(generous))
        assert (
            main(self._args(
                tmp_path, [*fast, "--baseline", str(tmp_path / "ok.json")]
            ))
            == 0
        )
        impossible = {"schema": 1, "kernels": {
            "trajectory_sampling": {"speedup": 1e9},
            "not_benchmarked": {"speedup": 1.0},
        }}
        (tmp_path / "bad.json").write_text(json.dumps(impossible))
        assert (
            main(self._args(
                tmp_path, [*fast, "--baseline", str(tmp_path / "bad.json")]
            ))
            == 4
        )
        err = capsys.readouterr().err
        assert "REGRESSION trajectory_sampling" in err
        assert "missing from bench report" in err

    def test_kernel_filter_restricts_report_and_rejects_unknown(
        self, tmp_path, capsys
    ):
        import json

        assert main(self._args(
            tmp_path, ["--kernels", "trajectory_sampling,success_estimation"]
        )) == 0
        report = json.loads((tmp_path / "bench.json").read_text())
        assert set(report["kernels"]) == {
            "trajectory_sampling", "success_estimation",
        }
        capsys.readouterr()
        assert main(self._args(tmp_path, ["--kernels", "warp_drive"])) == 2
        assert "unknown bench kernel" in capsys.readouterr().err

    def test_report_only_kernels_never_fail_the_gate(self):
        # "gate": false entries (near-1.0x ratios that flake on shared
        # runners) are exempt from the ratio floor, but dropping the
        # kernel from the report still fails — coverage stays gated.
        from repro.experiments.bench import compare_to_baseline

        baseline = {"kernels": {
            "hard": {"speedup": 5.0},
            "soft": {"speedup": 1.0, "gate": False},
        }}
        healthy = {"kernels": {
            "hard": {"speedup": 5.0}, "soft": {"speedup": 0.2},
        }}
        assert compare_to_baseline(healthy, baseline) == []
        missing = {"kernels": {"hard": {"speedup": 5.0}}}
        assert compare_to_baseline(missing, baseline) == [
            "soft: missing from bench report"
        ]

    def test_missing_baseline_errors(self, tmp_path, capsys):
        assert (
            main(self._args(tmp_path, ["--baseline", str(tmp_path / "nope.json")]))
            == 2
        )
        assert "baseline not found" in capsys.readouterr().err

"""Tests for the VQE application layer."""

import numpy as np
import pytest

from repro.apps import (
    Hamiltonian,
    PauliTerm,
    exact_ground_energy,
    expectation_value,
    h2_hamiltonian,
    hardware_efficient_ansatz,
    noisy_energy,
    optimize_vqe,
)
from repro.compiler import OptimizationLevel
from repro.devices import ibmq14_melbourne, umd_trapped_ion


class TestHamiltonian:
    def test_pauli_term_matrix(self):
        term = PauliTerm(2.0, "ZI")
        np.testing.assert_allclose(
            term.matrix(), 2.0 * np.diag([1, 1, -1, -1])
        )

    def test_bad_pauli_string(self):
        with pytest.raises(ValueError, match="bad Pauli"):
            PauliTerm(1.0, "AB")

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError, match="same qubit count"):
            Hamiltonian((PauliTerm(1.0, "Z"), PauliTerm(1.0, "ZZ")))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Hamiltonian(())

    def test_h2_is_hermitian(self):
        mat = h2_hamiltonian().matrix()
        np.testing.assert_allclose(mat, mat.conj().T)

    def test_h2_ground_energy(self):
        # The standard tapered-H2 electronic ground energy.
        assert exact_ground_energy(h2_hamiltonian()) == pytest.approx(
            -1.8572, abs=1e-3
        )


class TestAnsatz:
    def test_parameter_count_enforced(self):
        with pytest.raises(ValueError, match="needs 4 parameters"):
            hardware_efficient_ansatz([0.1] * 3, num_qubits=2, layers=1)

    def test_structure(self):
        circuit = hardware_efficient_ansatz([0.1] * 4, 2, 1)
        names = [i.name for i in circuit]
        assert names == ["ry", "ry", "cx", "ry", "ry"]

    def test_zero_parameters_give_zero_state(self):
        circuit = hardware_efficient_ansatz([0.0] * 4, 2, 1)
        # |00> is an eigenstate of the untwisted ansatz.
        zz = Hamiltonian((PauliTerm(1.0, "ZZ"),))
        assert expectation_value(circuit, zz) == pytest.approx(1.0)

    def test_two_layers(self):
        circuit = hardware_efficient_ansatz([0.1] * 6, 2, 2)
        assert circuit.count_ops()["cx"] == 2


class TestOptimization:
    def test_reaches_ground_state(self):
        hamiltonian = h2_hamiltonian()
        _, energy = optimize_vqe(hamiltonian)
        assert energy == pytest.approx(
            exact_ground_energy(hamiltonian), abs=2e-3
        )

    def test_energy_never_below_ground(self):
        # Variational principle.
        hamiltonian = h2_hamiltonian()
        ground = exact_ground_energy(hamiltonian)
        rng = np.random.default_rng(0)
        for _ in range(10):
            params = rng.uniform(-np.pi, np.pi, 4)
            circuit = hardware_efficient_ansatz(params, 2, 1)
            assert expectation_value(circuit, hamiltonian) >= ground - 1e-9


class TestNoisyEnergy:
    def test_noise_raises_energy(self):
        hamiltonian = h2_hamiltonian()
        params, clean_energy = optimize_vqe(hamiltonian)
        noisy = noisy_energy(params, hamiltonian, umd_trapped_ion())
        assert noisy > clean_energy
        # But the low-error ion machine stays within ~20 mHa.
        assert noisy - clean_energy < 0.05

    def test_noise_aware_compilation_gives_lower_energy(self):
        hamiltonian = h2_hamiltonian()
        params, _ = optimize_vqe(hamiltonian)
        device = ibmq14_melbourne()
        aware = noisy_energy(
            params, hamiltonian, device, level=OptimizationLevel.OPT_1QCN
        )
        unaware = noisy_energy(
            params, hamiltonian, device, level=OptimizationLevel.OPT_1QC
        )
        assert aware <= unaware + 1e-6

    def test_works_on_large_devices(self):
        # The compact-view path: a 14-qubit machine, 2-qubit problem.
        hamiltonian = h2_hamiltonian()
        params = np.zeros(4)
        energy = noisy_energy(params, hamiltonian, ibmq14_melbourne())
        assert np.isfinite(energy)

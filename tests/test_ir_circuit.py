"""Tests for the Circuit container and Instruction validation."""

import pytest

from repro.ir import Circuit, Instruction


class TestInstruction:
    def test_valid(self):
        inst = Instruction("cx", (0, 1))
        assert inst.num_qubits == 2
        assert inst.is_unitary

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="expects 2 qubit"):
            Instruction("cx", (0,))

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError, match="duplicate"):
            Instruction("cx", (1, 1))

    def test_wrong_params(self):
        with pytest.raises(ValueError, match="parameter"):
            Instruction("rx", (0,))

    def test_remap(self):
        inst = Instruction("cx", (0, 1)).remap({0: 5, 1: 3})
        assert inst.qubits == (5, 3)

    def test_remap_preserves_cbits(self):
        inst = Instruction("measure", (0,), (), (0,)).remap({0: 7})
        assert inst.qubits == (7,)
        assert inst.cbits == (0,)

    def test_str_with_params(self):
        assert "rx(0.5) 2" in str(Instruction("rx", (2,), (0.5,)))


class TestCircuitConstruction:
    def test_builder_chaining(self):
        circ = Circuit(2).h(0).cx(0, 1).measure_all()
        assert len(circ) == 4
        assert circ.count_ops() == {"h": 1, "cx": 1, "measure": 2}

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError, match="out of range"):
            Circuit(2).h(2)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_measure_default_cbit(self):
        circ = Circuit(3).measure(1)
        assert circ[0].cbits == (1,)

    def test_measure_explicit_cbit(self):
        circ = Circuit(3).measure(1, cbit=0)
        assert circ[0].cbits == (0,)

    def test_iteration_and_indexing(self):
        circ = Circuit(1).x(0).h(0)
        assert [i.name for i in circ] == ["x", "h"]
        assert circ[1].name == "h"


class TestCircuitAnalysis:
    def test_depth_parallel_gates(self):
        circ = Circuit(2).h(0).h(1)
        assert circ.depth() == 1

    def test_depth_serial_gates(self):
        circ = Circuit(2).h(0).cx(0, 1).h(1)
        assert circ.depth() == 3

    def test_depth_with_barrier(self):
        circ = Circuit(2).h(0)
        circ.barrier()
        circ.h(1)
        assert circ.depth() == 2

    def test_two_qubit_gate_count(self):
        circ = Circuit(3).h(0).cx(0, 1).cz(1, 2).swap(0, 2).measure_all()
        assert circ.num_two_qubit_gates() == 3
        assert circ.num_single_qubit_gates() == 1

    def test_used_qubits(self):
        circ = Circuit(5).h(1).cx(1, 3)
        assert circ.used_qubits() == (1, 3)


class TestCircuitTransforms:
    def test_copy_is_independent(self):
        circ = Circuit(1).x(0)
        other = circ.copy()
        other.h(0)
        assert len(circ) == 1
        assert len(other) == 2

    def test_remap(self):
        circ = Circuit(2).cx(0, 1)
        mapped = circ.remap({0: 3, 1: 1}, num_qubits=4)
        assert mapped[0].qubits == (3, 1)
        assert mapped.num_qubits == 4

    def test_compose(self):
        a = Circuit(2).h(0)
        b = Circuit(2).cx(0, 1)
        a.compose(b)
        assert [i.name for i in a] == ["h", "cx"]

    def test_compose_too_large_rejected(self):
        with pytest.raises(ValueError):
            Circuit(1).compose(Circuit(2))

    def test_repeated_moves_measurements_to_end(self):
        circ = Circuit(1).x(0).measure(0)
        tripled = circ.repeated(3)
        names = [i.name for i in tripled]
        assert names == ["x", "x", "x", "measure"]

    def test_repeated_rejects_zero(self):
        with pytest.raises(ValueError):
            Circuit(1).x(0).repeated(0)

    def test_without_measurements(self):
        circ = Circuit(1).x(0).measure(0)
        assert [i.name for i in circ.without_measurements()] == ["x"]

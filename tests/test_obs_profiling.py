"""Tests for cProfile capture and artifact summarization."""

import json
import pstats

import pytest

from repro.obs.profiling import (
    collect_artifacts,
    cprofile_to,
    format_hot_passes,
    format_top_functions,
    hot_passes,
    top_functions,
)
from repro.obs.tracer import Tracer


def _busy_work():
    return sum(i * i for i in range(500))


class TestCprofileTo:
    def test_none_path_is_a_noop(self):
        with cprofile_to(None) as profiler:
            assert profiler is None
            _busy_work()

    def test_writes_loadable_stats(self, tmp_path):
        target = tmp_path / "nested" / "session.pstats"
        with cprofile_to(target):
            _busy_work()
        stats = pstats.Stats(str(target))
        assert stats.total_calls > 0

    def test_stats_written_even_on_exception(self, tmp_path):
        target = tmp_path / "crash.pstats"
        with pytest.raises(RuntimeError):
            with cprofile_to(target):
                _busy_work()
                raise RuntimeError("boom")
        assert target.exists()
        assert pstats.Stats(str(target)).total_calls > 0


class TestCollectArtifacts:
    def test_splits_files_and_scans_directories(self, tmp_path):
        (tmp_path / "a.pstats").write_bytes(b"")
        (tmp_path / "worker-1-trace.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("ignored")
        extra_stats = tmp_path / "extra.pstats"
        extra_stats.write_bytes(b"")
        extra_trace = tmp_path / "trace.json"
        extra_trace.write_text("{}")
        stats, traces = collect_artifacts(
            [tmp_path, str(extra_stats), str(extra_trace)]
        )
        assert [p.name for p in stats] == ["a.pstats", "extra.pstats", "extra.pstats"]
        assert extra_trace in traces
        assert all(p.suffix in (".pstats", ".json") for p in stats + traces)

    def test_worker_shards_skipped_when_merged_trace_present(self, tmp_path):
        # trace.json already contains every worker event: counting the
        # shards it was merged from would double worker spans.
        (tmp_path / "trace.json").write_text("{}")
        (tmp_path / "worker-1-trace.json").write_text("{}")
        (tmp_path / "worker-2-trace.json").write_text("{}")
        _, traces = collect_artifacts([tmp_path])
        assert [p.name for p in traces] == ["trace.json"]

    def test_worker_shards_kept_without_merged_trace(self, tmp_path):
        (tmp_path / "worker-1-trace.json").write_text("{}")
        _, traces = collect_artifacts([tmp_path])
        assert [p.name for p in traces] == ["worker-1-trace.json"]


class TestTopFunctions:
    def _stats_file(self, tmp_path, name="one.pstats"):
        target = tmp_path / name
        with cprofile_to(target):
            _busy_work()
        return target

    def test_rows_sorted_and_limited(self, tmp_path):
        rows = top_functions([self._stats_file(tmp_path)], limit=5)
        assert 0 < len(rows) <= 5
        cumtimes = [row["cumtime_s"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)
        assert {"function", "location", "ncalls", "tottime_s"} <= set(rows[0])

    def test_merging_two_profiles_adds_calls(self, tmp_path):
        first = self._stats_file(tmp_path, "one.pstats")
        second = self._stats_file(tmp_path, "two.pstats")
        solo = {
            (r["function"], r["location"]): r["ncalls"]
            for r in top_functions([first], limit=100)
        }
        merged = top_functions([first, second], limit=100)
        genexpr = [r for r in merged if "genexpr" in r["function"]]
        assert genexpr
        key = (genexpr[0]["function"], genexpr[0]["location"])
        assert genexpr[0]["ncalls"] >= solo[key]

    def test_unknown_sort_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            top_functions([self._stats_file(tmp_path)], sort="speed")

    def test_empty_inputs(self):
        assert top_functions([]) == []
        assert format_top_functions([]) == "(no profile data)"

    def test_format_is_a_table(self, tmp_path):
        text = format_top_functions(
            top_functions([self._stats_file(tmp_path)], limit=3)
        )
        lines = text.splitlines()
        assert "function" in lines[0]
        assert len(lines) == 5  # header + rule + 3 rows


class TestHotPasses:
    def _trace_file(self, tmp_path, name="trace.json"):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("route"):
                pass
        with tracer.span("compile"):
            pass
        return tracer.write_chrome_trace(tmp_path / name)

    def test_aggregates_by_span_name(self, tmp_path):
        rows = hot_passes([self._trace_file(tmp_path)])
        by_name = {row["pass"]: row for row in rows}
        assert by_name["compile"]["count"] == 2
        assert by_name["route"]["count"] == 1
        assert by_name["compile"]["total_s"] >= by_name["route"]["total_s"]
        assert rows[0]["total_s"] == max(r["total_s"] for r in rows)

    def test_aggregates_across_files(self, tmp_path):
        paths = [
            self._trace_file(tmp_path, "a-trace.json"),
            self._trace_file(tmp_path, "b-trace.json"),
        ]
        rows = hot_passes(paths)
        assert {r["pass"]: r["count"] for r in rows}["compile"] == 4

    def test_ignores_non_complete_events(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({
            "traceEvents": [
                {"name": "meta", "ph": "M"},
                {"name": "real", "ph": "X", "dur": 1000.0, "ts": 0.0},
            ]
        }))
        rows = hot_passes([path])
        assert [r["pass"] for r in rows] == ["real"]
        assert rows[0]["total_s"] == pytest.approx(1e-3)

    def test_format_is_a_table(self, tmp_path):
        text = format_hot_passes(hot_passes([self._trace_file(tmp_path)]))
        assert "span" in text.splitlines()[0]
        assert "compile" in text
        assert format_hot_passes([]) == "(no trace data)"

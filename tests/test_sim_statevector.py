"""Tests for the dense state-vector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Circuit, gate_matrix
from repro.ir.instruction import Instruction
from repro.sim import (
    circuit_unitary,
    ideal_distribution,
    simulate_statevector,
)
from repro.sim.statevector import (
    apply_unitary,
    measurement_wiring,
    zero_state,
)


class TestApplyUnitary:
    def test_x_on_qubit0_is_msb(self):
        state = zero_state(2)
        out = apply_unitary(state, gate_matrix("x"), (0,), 2)
        # Qubit 0 is the most significant bit: |00> -> |10> = index 2.
        np.testing.assert_allclose(out, np.eye(4)[2])

    def test_x_on_qubit1_is_lsb(self):
        out = apply_unitary(zero_state(2), gate_matrix("x"), (1,), 2)
        np.testing.assert_allclose(out, np.eye(4)[1])

    def test_matches_kron_for_adjacent_qubits(self):
        rng = np.random.default_rng(0)
        state = rng.normal(size=4) + 1j * rng.normal(size=4)
        state /= np.linalg.norm(state)
        cx = gate_matrix("cx")
        np.testing.assert_allclose(
            apply_unitary(state, cx, (0, 1), 2), cx @ state, atol=1e-12
        )

    def test_reversed_qubit_order(self):
        # cx with control=1, target=0 on a 2-qubit register.
        state = zero_state(2)
        state = apply_unitary(state, gate_matrix("x"), (1,), 2)  # |01>
        out = apply_unitary(state, gate_matrix("cx"), (1, 0), 2)
        np.testing.assert_allclose(out, np.eye(4)[0b11])

    def test_norm_preserved(self):
        rng = np.random.default_rng(1)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        out = apply_unitary(state, gate_matrix("ccx"), (2, 0, 1), 3)
        assert np.linalg.norm(out) == pytest.approx(1.0)


class TestSimulate:
    def test_bell_state(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        state = simulate_statevector(circuit)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_measure_is_noop_on_state(self):
        circuit = Circuit(1).h(0).measure(0)
        state = simulate_statevector(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_fault_injection_changes_state(self):
        circuit = Circuit(1).h(0).h(0)
        clean = simulate_statevector(circuit)
        faulty = simulate_statevector(
            circuit, faults=[(0, Instruction("z", (0,)))]
        )
        # H Z H = X, so the faulty run ends in |1>.
        np.testing.assert_allclose(np.abs(clean) ** 2, [1, 0], atol=1e-12)
        np.testing.assert_allclose(np.abs(faulty) ** 2, [0, 1], atol=1e-12)

    def test_initial_state_respected(self):
        circuit = Circuit(1).x(0)
        start = np.array([0, 1], dtype=complex)
        out = simulate_statevector(circuit, initial_state=start)
        np.testing.assert_allclose(out, [1, 0], atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_circuits_preserve_norm(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(3)
        for _ in range(15):
            kind = rng.integers(3)
            if kind == 0:
                circuit.h(int(rng.integers(3)))
            elif kind == 1:
                circuit.rx(float(rng.uniform(-3, 3)), int(rng.integers(3)))
            else:
                a, b = rng.choice(3, size=2, replace=False)
                circuit.cx(int(a), int(b))
        state = simulate_statevector(circuit)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-9)


class TestCircuitUnitary:
    def test_single_gate(self):
        np.testing.assert_allclose(
            circuit_unitary(Circuit(1).h(0)), gate_matrix("h")
        )

    def test_composition_order(self):
        circuit = Circuit(1).x(0).h(0)
        np.testing.assert_allclose(
            circuit_unitary(circuit),
            gate_matrix("h") @ gate_matrix("x"),
            atol=1e-12,
        )

    def test_rejects_measurement(self):
        with pytest.raises(ValueError, match="measurement-free"):
            circuit_unitary(Circuit(1).measure(0))

    def test_unitarity(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).swap(0, 2)
        mat = circuit_unitary(circuit)
        np.testing.assert_allclose(
            mat @ mat.conj().T, np.eye(8), atol=1e-10
        )


class TestDistributions:
    def test_deterministic_circuit(self):
        circuit = Circuit(2).x(0).measure_all()
        assert ideal_distribution(circuit) == pytest.approx({"10": 1.0})

    def test_uniform_superposition(self):
        circuit = Circuit(2).h(0).h(1).measure_all()
        dist = ideal_distribution(circuit)
        assert dist == pytest.approx(
            {"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25}
        )

    def test_partial_measurement_marginalizes(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure(0, cbit=0)
        dist = ideal_distribution(circuit)
        assert dist == pytest.approx({"0": 0.5, "1": 0.5})

    def test_cbit_remapping(self):
        # Measure qubit 0 into cbit 1 and vice versa.
        circuit = Circuit(2).x(0)
        circuit.measure(0, cbit=1).measure(1, cbit=0)
        assert ideal_distribution(circuit) == pytest.approx({"01": 1.0})

    def test_no_measurements_rejected(self):
        with pytest.raises(ValueError, match="no measurements"):
            ideal_distribution(Circuit(1).h(0))

    def test_wiring_order(self):
        circuit = Circuit(2).measure(1).measure(0)
        assert measurement_wiring(circuit) == [(1, 1), (0, 0)]

    def test_probabilities_sum_to_one(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).measure_all()
        dist = ideal_distribution(circuit)
        assert sum(dist.values()) == pytest.approx(1.0)

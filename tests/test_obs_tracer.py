"""Tests for the span tracer (repro.obs.tracer)."""

import json

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    activate_tracer,
    format_duration,
    get_active_tracer,
    merge_chrome_traces,
    span,
    tracer_context,
    tree_from_chrome,
)


class TestNullSpan:
    def test_span_without_tracer_is_the_null_singleton(self):
        assert get_active_tracer() is None
        assert span("anything") is NULL_SPAN

    def test_null_span_is_falsy(self):
        assert not NULL_SPAN
        # The hot-path guard: attribute work behind `if sp:` is skipped.
        with span("x") as sp:
            assert not sp

    def test_null_span_accepts_set_and_nesting(self):
        with span("outer") as sp:
            assert sp.set(depth=3) is NULL_SPAN
            with span("inner"):
                pass

    def test_real_span_is_truthy(self):
        tracer = Tracer()
        with tracer.span("x") as sp:
            assert sp


class TestTracer:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("map"):
                pass
            with tracer.span("route"):
                with tracer.span("schedule"):
                    pass
        assert [s.name for s in tracer.walk()] == [
            "compile", "map", "route", "schedule",
        ]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["map", "route"]
        assert root.children[1].children[0].name == "schedule"

    def test_durations_non_negative_and_nested_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.duration_s >= 0.0
        assert inner.duration_s >= 0.0
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_open_span_reports_zero_duration(self):
        tracer = Tracer()
        sp = tracer.span("open")
        assert sp.duration_s == 0.0
        tracer.close(sp)
        assert sp.end_s is not None

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("compile", device="agave") as sp:
            returned = sp.set(swaps=3, depth=11)
        assert returned is sp
        assert sp.attrs == {"device": "agave", "swaps": 3, "depth": 11}

    def test_close_pops_orphaned_children(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("orphan")  # never closed explicitly
        tracer.close(outer)
        assert outer.end_s is not None
        assert outer.children[0].end_s is not None
        assert tracer._stack == []

    def test_begin_end_imperative_aliases(self):
        tracer = Tracer()
        tracer.begin("section", title="Figure 1")
        first = tracer.end()
        assert first.name == "section"
        assert first.end_s is not None
        assert tracer.end() is None  # nothing open: a no-op

    def test_finish_closes_everything(self):
        tracer = Tracer()
        tracer.span("a")
        tracer.span("b")
        tracer.finish()
        assert all(s.end_s is not None for s in tracer.walk())

    def test_add_event_is_backdated(self):
        tracer = Tracer()
        sp = tracer.add_event("sweep.task", 1.5, pid=4242, benchmark="BV4")
        assert sp.end_s is not None
        assert sp.duration_s == pytest.approx(1.5)
        assert sp.pid == 4242
        assert sp.attrs == {"benchmark": "BV4"}
        assert tracer.roots == [sp]


class TestActivation:
    def test_tracer_context_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        activate_tracer(outer)
        try:
            with tracer_context(inner):
                assert get_active_tracer() is inner
                with span("recorded"):
                    pass
            assert get_active_tracer() is outer
        finally:
            activate_tracer(None)
        assert [s.name for s in inner.walk()] == ["recorded"]
        assert list(outer.walk()) == []

    def test_tracer_context_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracer_context(Tracer()):
                raise RuntimeError("boom")
        assert get_active_tracer() is None


class TestChromeTrace:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("compile", device="agave", mapping=(0, 1)):
            with tracer.span("route", swaps=2):
                pass
        return tracer

    def test_events_are_complete_events_in_microseconds(self):
        tracer = self._traced()
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["compile", "route"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert event["pid"] == event["tid"]

    def test_non_scalar_attrs_are_stringified(self):
        trace = self._traced().to_chrome_trace()
        args = trace["traceEvents"][0]["args"]
        assert args["device"] == "agave"
        assert args["mapping"] == "(0, 1)"  # tuple -> str, JSON-safe

    def test_timestamps_are_unix_epoch_anchored(self):
        tracer = self._traced()
        ts_s = tracer.to_chrome_trace()["traceEvents"][0]["ts"] / 1e6
        assert abs(ts_s - tracer.epoch_unix) < 60.0

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_chrome_trace(tmp_path / "deep" / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == tracer.to_chrome_trace()

    def test_merge_concatenates_and_sorts(self):
        first, second = Tracer(), Tracer()
        with second.span("later"):
            pass
        with first.span("earlier"):
            pass
        merged = merge_chrome_traces(
            first.to_chrome_trace(), second.to_chrome_trace()
        )
        ts = [e["ts"] for e in merged["traceEvents"]]
        assert ts == sorted(ts)
        assert len(merged["traceEvents"]) == 2


class TestRendering:
    def test_format_duration_units(self):
        assert format_duration(2.5) == "2.50 s"
        assert format_duration(0.0123) == "12.3 ms"
        assert format_duration(42e-6) == "42 us"

    def test_format_tree_shows_names_durations_attrs(self):
        tracer = Tracer()
        with tracer.span("compile", device="agave"):
            with tracer.span("route", swaps=2):
                pass
        text = tracer.format_tree()
        assert "compile" in text and "route" in text
        assert "device=agave" in text and "swaps=2" in text
        assert "└─" in text

    def test_tree_from_chrome_matches_live_tree_structure(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("map"):
                pass
            with tracer.span("route"):
                pass
        rendered = tree_from_chrome(tracer.to_chrome_trace())
        lines = rendered.splitlines()
        assert lines[0].startswith("compile")
        assert any("map" in line for line in lines[1:])
        assert any("route" in line for line in lines[1:])
        # Children are indented under the root, not siblings of it.
        assert all(line[0] in "├└│ " for line in lines[1:])

    def test_tree_from_chrome_groups_by_pid(self):
        supervisor, worker = Tracer(), Tracer()
        with supervisor.span("sweep"):
            pass
        with worker.span("measure"):
            pass
        for event in worker.roots:
            event.pid = worker.roots[0].pid + 1  # simulate another process
        merged = merge_chrome_traces(
            supervisor.to_chrome_trace(), worker.to_chrome_trace()
        )
        rendered = tree_from_chrome(merged)
        assert rendered.count("[pid ") == 2


class TestSpanUnit:
    def test_standalone_span_context_manager(self):
        sp = Span("lonely", 0.0)
        with sp:
            pass  # no tracer attached: __exit__ must not blow up
        assert sp.end_s is None  # only a tracer closes spans

"""Tests for the max-min assignment solver (the Z3 stand-in)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import AssignmentProblem, MaxMinSolver, ProductSolver


def symmetric_scores(n: int, rng: np.random.Generator) -> np.ndarray:
    mat = rng.uniform(0.3, 0.99, (n, n))
    mat = (mat + mat.T) / 2
    np.fill_diagonal(mat, 1.0)
    return mat


def brute_force_maxmin(problem: AssignmentProblem):
    best, best_score = None, -1.0
    for perm in itertools.permutations(
        range(problem.num_values), problem.num_vars
    ):
        score = problem.min_score(perm)
        if score > best_score:
            best, best_score = perm, score
    return best, best_score


class TestProblem:
    def test_rejects_more_vars_than_values(self):
        with pytest.raises(ValueError, match="injectively"):
            AssignmentProblem(4, 3)

    def test_rejects_bad_unary_shape(self):
        problem = AssignmentProblem(2, 3)
        with pytest.raises(ValueError, match="length 3"):
            problem.add_unary_term(0, [0.5, 0.5])

    def test_rejects_out_of_range_scores(self):
        problem = AssignmentProblem(2, 3)
        with pytest.raises(ValueError, match="reliabilities"):
            problem.add_unary_term(0, [0.5, 0.0, 0.5])

    def test_rejects_same_var_pair(self):
        problem = AssignmentProblem(2, 3)
        with pytest.raises(ValueError, match="distinct"):
            problem.add_pair_term(1, 1, np.full((3, 3), 0.5))

    def test_min_score_no_terms(self):
        problem = AssignmentProblem(2, 3)
        assert problem.min_score([0, 1]) == 1.0

    def test_validate_catches_duplicates(self):
        problem = AssignmentProblem(2, 3)
        with pytest.raises(ValueError, match="injective"):
            problem.validate([1, 1])

    def test_candidate_thresholds_sorted_unique(self):
        problem = AssignmentProblem(2, 3)
        problem.add_unary_term(0, [0.5, 0.7, 0.5])
        thresholds = problem.candidate_thresholds()
        assert list(thresholds) == sorted(set(thresholds))


class TestGreedy:
    def test_greedy_is_valid(self):
        rng = np.random.default_rng(0)
        problem = AssignmentProblem(4, 6)
        scores = symmetric_scores(6, rng)
        problem.add_pair_term(0, 1, scores)
        problem.add_pair_term(1, 2, scores)
        problem.add_pair_term(2, 3, scores)
        assignment = MaxMinSolver(problem).greedy()
        problem.validate(assignment)


class TestSolve:
    @pytest.mark.parametrize("seed", range(8))
    def test_optimal_vs_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 5))
        num_values = int(rng.integers(num_vars, 7))
        problem = AssignmentProblem(num_vars, num_values)
        scores = symmetric_scores(num_values, rng)
        for a in range(num_vars - 1):
            problem.add_pair_term(a, a + 1, scores)
        problem.add_unary_term(0, rng.uniform(0.5, 0.99, num_values))
        solution = MaxMinSolver(problem).solve()
        _, brute = brute_force_maxmin(problem)
        assert solution.objective == pytest.approx(brute)
        assert solution.stats.proven_optimal

    def test_feasible_threshold_query(self):
        problem = AssignmentProblem(2, 3)
        problem.add_unary_term(0, [0.9, 0.5, 0.5])
        problem.add_unary_term(1, [0.5, 0.9, 0.5])
        assert MaxMinSolver(problem).feasible(0.8) == (0, 1)
        assert MaxMinSolver(problem).feasible(0.95) is None

    def test_node_limit_still_returns_valid(self):
        rng = np.random.default_rng(3)
        problem = AssignmentProblem(6, 8)
        scores = symmetric_scores(8, rng)
        for a in range(5):
            problem.add_pair_term(a, a + 1, scores)
        solution = MaxMinSolver(problem, node_limit=5).solve()
        problem.validate(solution.assignment)
        assert solution.objective > 0

    def test_stats_populated(self):
        problem = AssignmentProblem(2, 3)
        problem.add_unary_term(0, [0.9, 0.5, 0.5])
        solution = MaxMinSolver(problem).solve()
        # Greedy may already hit the optimum (no search needed), but the
        # result must be exact and timing recorded.
        assert solution.objective == pytest.approx(0.9)
        assert solution.stats.wall_time_s >= 0
        assert solution.stats.proven_optimal

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_instances_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 4))
        num_values = int(rng.integers(num_vars, 6))
        problem = AssignmentProblem(num_vars, num_values)
        scores = symmetric_scores(num_values, rng)
        pairs = list(itertools.combinations(range(num_vars), 2))
        for a, b in pairs[: int(rng.integers(1, len(pairs) + 1))]:
            problem.add_pair_term(a, b, scores)
        solution = MaxMinSolver(problem).solve()
        _, brute = brute_force_maxmin(problem)
        assert solution.objective == pytest.approx(brute)


class TestWarmHint:
    """The hint is bound-only: it may skip work, never steer the answer."""

    def _chain_with_many_optima(self):
        # A 3-variable chain where greedy's optimistic neighbor estimate
        # is a trap (it places var1 on value 0 for the 0.9 edge, which
        # the chain cannot realize twice) and several distinct
        # assignments attain the true optimum of 0.5.
        scores = np.array(
            [
                [1.0, 0.9, 0.3, 0.3],
                [0.9, 1.0, 0.5, 0.5],
                [0.3, 0.5, 1.0, 0.8],
                [0.3, 0.5, 0.8, 1.0],
            ]
        )
        problem = AssignmentProblem(3, 4)
        problem.add_pair_term(0, 1, scores)
        problem.add_pair_term(1, 2, scores)
        return problem

    def test_equal_objective_hint_returns_cold_assignment(self):
        # The reviewer scenario: a hint that already attains the
        # optimal objective (say, from another calibration day) must
        # not be returned verbatim — warm and cold solves must produce
        # the bit-identical assignment, or compiled outputs would
        # depend on cache state.
        problem = self._chain_with_many_optima()
        cold = MaxMinSolver(problem).solve()
        _, brute = brute_force_maxmin(problem)
        assert cold.objective == pytest.approx(brute)
        optima = [
            perm
            for perm in itertools.permutations(range(4), 3)
            if problem.min_score(perm) == cold.objective
        ]
        assert len(optima) > 1  # the scenario needs equal-objective ties
        greedy_objective = problem.min_score(MaxMinSolver(problem).greedy())
        assert greedy_objective < cold.objective  # hints beat the seed
        for hint in optima:
            warm = MaxMinSolver(problem).solve(warm_hint=hint)
            assert warm.assignment == cold.assignment
            assert warm.objective == cold.objective
            assert warm.stats.proven_optimal

    @pytest.mark.parametrize("seed", range(6))
    def test_any_valid_hint_never_changes_assignment(self, seed):
        rng = np.random.default_rng(seed + 1000)
        num_vars = int(rng.integers(2, 5))
        num_values = int(rng.integers(num_vars, 7))
        problem = AssignmentProblem(num_vars, num_values)
        scores = symmetric_scores(num_values, rng)
        for a in range(num_vars - 1):
            problem.add_pair_term(a, a + 1, scores)
        problem.add_unary_term(0, rng.uniform(0.5, 0.99, num_values))
        cold = MaxMinSolver(problem).solve()
        for _ in range(4):
            hint = tuple(
                int(v) for v in rng.permutation(num_values)[:num_vars]
            )
            warm = MaxMinSolver(problem).solve(warm_hint=hint)
            assert warm.assignment == cold.assignment
            assert warm.objective == cold.objective

    def test_invalid_hints_ignored(self):
        problem = self._chain_with_many_optima()
        cold = MaxMinSolver(problem).solve()
        for bad in [(0, 0, 1), (0, 1), (0, 1, 9)]:
            warm = MaxMinSolver(problem).solve(warm_hint=bad)
            assert warm.assignment == cold.assignment
            assert warm.objective == cold.objective


class TestProductSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_optimal_vs_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        problem = AssignmentProblem(3, 5)
        scores = symmetric_scores(5, rng)
        problem.add_pair_term(0, 1, scores)
        problem.add_pair_term(1, 2, scores)
        solution = ProductSolver(problem).solve()
        brute = max(
            problem.product_score(p)
            for p in itertools.permutations(range(5), 3)
        )
        assert solution.objective == pytest.approx(brute)

    def test_product_explores_more_nodes_than_maxmin(self):
        # The paper's scalability argument: the product objective cannot
        # prune until qubits are placed, so it searches more.
        rng = np.random.default_rng(11)
        problem = AssignmentProblem(5, 8)
        scores = symmetric_scores(8, rng)
        for a in range(4):
            problem.add_pair_term(a, a + 1, scores)
        maxmin = MaxMinSolver(problem).solve()
        product = ProductSolver(problem).solve()
        assert product.stats.nodes > maxmin.stats.nodes

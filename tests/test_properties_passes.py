"""Hypothesis property tests for the optimization passes.

Three algebraic invariants, checked over generated random circuits:

* **Fixed-point idempotence** — a second :class:`PassManager` run over
  the first run's output changes nothing (the manager really did reach
  a fixed point, not just an iteration bound).
* **Unitary preservation** — every individual pass preserves the
  circuit unitary up to global phase on measurement-free 1-3 qubit
  circuits: compared via the quaternion comparator on one qubit and via
  the full ``circuit_unitary`` matrix otherwise.
* **Pass-order permutation safety** — the pipeline's passes are
  mutually independent rewrites: any order preserves the semantics
  (though not necessarily the gate count).
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.onequbit import gate_quaternion
from repro.compiler.passes import (
    PassManager,
    build_pass_manager,
    preset_passes,
)
from repro.contracts.fuzz import random_circuit
from repro.ir.circuit import Circuit
from repro.ir.decompose import decompose_to_basis
from repro.rotations import Quaternion
from repro.sim.statevector import circuit_unitary


def _unitary_case(seed: int, max_qubits: int = 3) -> Circuit:
    """A measurement-free random circuit on 1-3 qubits.

    Generated through the fuzz generator (same gate pool the pipeline
    sees) with the trailing measurements stripped; 1q cases draw from
    the 1Q-only slice of the pool.
    """
    rng = random.Random(seed)
    num_qubits = rng.randint(1, max_qubits)
    if num_qubits == 1:
        circuit = Circuit(1, name=f"prop{seed}")
        for _ in range(rng.randint(1, 8)):
            if rng.random() < 0.6:
                gate = rng.choice(("h", "x", "y", "z", "s", "sdg", "t", "tdg"))
                circuit.add(gate, (0,))
            else:
                gate = rng.choice(("rx", "ry", "rz"))
                circuit.add(gate, (0,), (rng.uniform(-np.pi, np.pi),))
        return circuit
    generated = random_circuit(
        rng, num_qubits, rng.randint(2, 10), name=f"prop{seed}"
    )
    unitaries = [inst for inst in generated if inst.is_unitary]
    return decompose_to_basis(
        Circuit(num_qubits, instructions=unitaries, name=generated.name)
    )


def _circuit_quaternion(circuit: Circuit) -> Quaternion:
    quat = Quaternion.identity()
    for inst in circuit:
        quat = gate_quaternion(inst.name, inst.params) * quat
    return quat


def _assert_equivalent(before: Circuit, after: Circuit):
    if before.num_qubits == 1:
        assert _circuit_quaternion(before).approx_equal(
            _circuit_quaternion(after), atol=1e-8
        )
        return
    u, v = circuit_unitary(before), circuit_unitary(after)
    overlap = v.conj().T @ u
    phase = overlap[
        np.unravel_index(np.argmax(np.abs(overlap)), overlap.shape)
    ]
    assert abs(abs(phase) - 1.0) < 1e-8
    assert np.allclose(u, phase * v, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_fixed_point_is_idempotent(seed):
    manager = build_pass_manager("full")
    circuit = _unitary_case(seed)
    once = manager.run(circuit)
    again = build_pass_manager("full")
    twice = again.run(once)
    assert list(twice) == list(once)
    assert again.iterations == 1  # first sweep already clean


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    pass_index=st.integers(0, len(preset_passes("full")) - 1),
)
def test_each_pass_preserves_unitary(seed, pass_index):
    compiler_pass = preset_passes("full")[pass_index]
    circuit = _unitary_case(seed)
    if compiler_pass.name == "state-compression":
        # State compression is sound relative to the |0...0> input, not
        # as a unitary identity; compare statevectors instead.
        before = circuit_unitary(circuit)[:, 0]
        rewritten = compiler_pass.run(circuit)
        after = circuit_unitary(rewritten)[:, 0]
        overlap = np.vdot(after, before)
        assert abs(abs(overlap) - 1.0) < 1e-8
        return
    _assert_equivalent(circuit, compiler_pass.run(circuit))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    order_seed=st.integers(0, 2**31 - 1),
)
def test_pass_order_permutation_is_safe(seed, order_seed):
    """Any permutation of the pipeline preserves the prepared state.

    The canonical order exists for gate-count quality; semantics must
    not depend on it."""
    passes = [p for p in preset_passes("full")]
    random.Random(order_seed).shuffle(passes)
    manager = PassManager(passes)
    circuit = _unitary_case(seed)
    rewritten = manager.run(circuit)
    assert manager.converged
    before = circuit_unitary(circuit)[:, 0]
    after = circuit_unitary(rewritten)[:, 0]
    overlap = np.vdot(after, before)
    assert abs(abs(overlap) - 1.0) < 1e-8


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_manager_never_increases_gate_counts(seed):
    manager = build_pass_manager("full")
    circuit = _unitary_case(seed)
    rewritten = manager.run(circuit)
    assert len(rewritten) <= len(circuit)
    assert (
        rewritten.num_two_qubit_gates() <= circuit.num_two_qubit_gates()
    )
    assert manager.gates_removed() >= 0
    assert manager.two_qubit_removed() >= 0

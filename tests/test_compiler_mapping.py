"""Tests for qubit mapping policies."""

import pytest

from tests.helpers import make_device
from repro.compiler.mapping import (
    InitialMapping,
    default_mapping,
    smt_mapping,
)
from repro.compiler.reliability import compute_reliability
from repro.devices import Topology, example_8q_device
from repro.ir import Circuit


class TestInitialMapping:
    def test_injective_enforced(self):
        with pytest.raises(ValueError, match="injective"):
            InitialMapping((0, 0), num_hardware_qubits=3)

    def test_range_enforced(self):
        with pytest.raises(ValueError, match="out of range"):
            InitialMapping((0, 5), num_hardware_qubits=3)

    def test_accessors(self):
        mapping = InitialMapping((2, 0, 1), num_hardware_qubits=4)
        assert mapping.hardware_qubit(0) == 2
        assert mapping.as_dict() == {0: 2, 1: 0, 2: 1}


class TestDefaultMapping:
    def test_identity(self, line4_ibm):
        circuit = Circuit(3).cx(0, 1)
        mapping = default_mapping(circuit, line4_ibm)
        assert mapping.placement == (0, 1, 2)

    def test_too_large_rejected(self, line4_ibm):
        with pytest.raises(ValueError, match="needs 5 qubits"):
            default_mapping(Circuit(5), line4_ibm)


class TestSmtMapping:
    def test_places_interacting_pair_on_best_edge(self):
        device = example_8q_device()
        reliability = compute_reliability(device)
        circuit = Circuit(2).cx(0, 1).measure_all()
        mapping = smt_mapping(circuit, device, reliability)
        a, b = mapping.placement
        # Must land on a directly-coupled 0.9-reliability edge.
        assert device.topology.are_coupled(a, b)
        assert device.calibration().edge_reliability(a, b) == pytest.approx(
            0.9
        )

    def test_avoids_weak_edge(self):
        # Only (2, 6) has reliability 0.7; the solver must not use it.
        device = example_8q_device()
        reliability = compute_reliability(device)
        circuit = Circuit(2).cx(0, 1)
        mapping = smt_mapping(circuit, device, reliability)
        assert set(mapping.placement) != {2, 6}

    def test_respects_readout_terms(self):
        device = make_device(Topology.full(3))
        # Qubit 1 has catastrophic readout.
        device.calibration().readout_error[1] = 0.6
        reliability = compute_reliability(device)
        circuit = Circuit(2).cx(0, 1).measure_all()
        mapping = smt_mapping(circuit, device, reliability)
        assert 1 not in mapping.placement

    def test_objective_matches_min_reliability(self):
        device = example_8q_device()
        reliability = compute_reliability(device)
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        mapping = smt_mapping(circuit, device, reliability)
        sym = reliability.symmetric()
        achieved = min(
            sym[mapping.placement[0], mapping.placement[1]],
            sym[mapping.placement[1], mapping.placement[2]],
        )
        assert mapping.objective == pytest.approx(achieved)
        # Best possible: a path of two 0.9 edges exists.
        assert mapping.objective == pytest.approx(0.9, abs=0.01)

    def test_star_program_maps_to_high_degree_qubit(self):
        # BV-style star: all data qubits talk to the ancilla.
        device = make_device(Topology.star(5, center=2))
        reliability = compute_reliability(device)
        circuit = Circuit(4)
        for q in (0, 1, 2):
            circuit.cx(q, 3)
        mapping = smt_mapping(circuit, device, reliability)
        # The ancilla (program qubit 3) must sit at the hub.
        assert mapping.placement[3] == 2

    def test_solver_metadata(self):
        device = example_8q_device()
        reliability = compute_reliability(device)
        circuit = Circuit(2).cx(0, 1)
        mapping = smt_mapping(circuit, device, reliability)
        assert mapping.objective is not None
        assert mapping.solver_time_s >= 0

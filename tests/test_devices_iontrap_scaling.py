"""Tests for the distance-dependent ion-chain models."""

import pytest

from repro.compiler import OptimizationLevel, compile_circuit
from repro.devices.iontrap_scaling import (
    distance_dependent_calibration,
    error_vs_distance,
    large_ion_trap,
)
from repro.programs import toffoli_benchmark
from repro.sim import ideal_distribution


class TestCalibration:
    def test_error_grows_with_distance(self):
        cal = distance_dependent_calibration(
            8, distance_strength=0.5, spatial_sigma=0.0
        )
        nn = cal.edge_error(0, 1)
        far = cal.edge_error(0, 7)
        assert far > nn
        # Linear exponent: distance 7 is 1 + 0.5*6 = 4x the base.
        assert far / nn == pytest.approx(4.0, rel=1e-6)

    def test_superlinear_exponent(self):
        linear = distance_dependent_calibration(
            6, distance_strength=0.3, distance_exponent=1.0,
            spatial_sigma=0.0,
        )
        quad = distance_dependent_calibration(
            6, distance_strength=0.3, distance_exponent=2.0,
            spatial_sigma=0.0,
        )
        assert quad.edge_error(0, 5) > linear.edge_error(0, 5)

    def test_zero_strength_is_flat(self):
        cal = distance_dependent_calibration(
            5, distance_strength=0.0, spatial_sigma=0.0
        )
        rates = set(round(r, 12) for r in cal.two_qubit_error.values())
        assert len(rates) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="two ions"):
            distance_dependent_calibration(1)
        with pytest.raises(ValueError, match="non-negative"):
            distance_dependent_calibration(4, distance_strength=-0.1)

    def test_rates_clamped(self):
        cal = distance_dependent_calibration(
            9, base_two_qubit_error=0.2, distance_strength=5.0
        )
        assert all(r <= 0.5 for r in cal.two_qubit_error.values())


class TestDevice:
    def test_fully_connected(self):
        device = large_ion_trap(7)
        assert device.topology.is_fully_connected()
        assert device.vendor.value == "umdti"

    def test_error_vs_distance_profile(self):
        device = large_ion_trap(8, distance_strength=0.4)
        profile = error_vs_distance(device)
        assert len(profile) == 7
        assert profile[-1] > profile[0]

    def test_compiles_benchmarks(self):
        device = large_ion_trap(6)
        circuit, correct = toffoli_benchmark()
        program = compile_circuit(circuit, device)
        assert program.num_swaps == 0
        assert ideal_distribution(program.circuit)[correct] == pytest.approx(
            1.0
        )

    def test_noise_aware_prefers_near_ions(self):
        # With strong distance penalties the noise-aware mapper should
        # pick a compact triple.
        device = large_ion_trap(9, distance_strength=1.0, seed=4)
        circuit, _ = toffoli_benchmark()
        program = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN
        )
        placement = sorted(program.initial_mapping.placement)
        assert placement[-1] - placement[0] <= 4  # compact cluster

"""Tests for the pulse-level lowering extension."""

import numpy as np
import pytest

from repro.compiler import compile_circuit
from repro.devices import ibmq5_tenerife, rigetti_agave, umd_trapped_ion
from repro.ir import Circuit
from repro.programs import bernstein_vazirani
from repro.pulse import (
    Gaussian,
    GaussianSquare,
    Constant,
    Play,
    Schedule,
    ShiftPhase,
    coupler_channel,
    default_calibration,
    drive_channel,
    lower_to_pulses,
)


class TestShapes:
    def test_gaussian_peak_at_center(self):
        shape = Gaussian(100.0, 0.5, 20.0)
        samples = shape.samples()
        assert samples.max() == pytest.approx(0.5, rel=1e-3)
        assert np.argmax(samples) == pytest.approx(50, abs=1)

    def test_gaussian_square_flat_top(self):
        shape = GaussianSquare(200.0, 0.8, 10.0, 120.0)
        samples = shape.samples()
        flat = samples[60:140]
        np.testing.assert_allclose(flat, 0.8, atol=1e-9)

    def test_constant(self):
        assert len(Constant(50.0, 0.2).samples()) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            Gaussian(-1.0, 0.5, 5.0)
        with pytest.raises(ValueError):
            Gaussian(10.0, 1.5, 5.0)
        with pytest.raises(ValueError):
            GaussianSquare(100.0, 0.5, 10.0, 150.0)


class TestSchedule:
    def test_asap_on_one_channel(self):
        schedule = Schedule()
        pulse = Gaussian(100.0, 0.5, 20.0)
        schedule.append(Play(pulse, drive_channel(0)))
        schedule.append(Play(pulse, drive_channel(0)))
        starts = [t.start_ns for t in schedule.instructions]
        assert starts == [0.0, 100.0]
        assert schedule.duration_ns() == 200.0

    def test_parallel_channels_overlap(self):
        schedule = Schedule()
        pulse = Gaussian(100.0, 0.5, 20.0)
        schedule.append(Play(pulse, drive_channel(0)))
        schedule.append(Play(pulse, drive_channel(1)))
        assert schedule.duration_ns() == 100.0

    def test_group_starts_together(self):
        schedule = Schedule()
        short = Gaussian(50.0, 0.5, 10.0)
        long = Gaussian(100.0, 0.5, 20.0)
        schedule.append(Play(long, drive_channel(0)))
        schedule.append_group(
            [Play(short, drive_channel(0)), Play(short, drive_channel(1))]
        )
        starts = {
            str(t.instruction.channel): t.start_ns
            for t in schedule.instructions
            if t.start_ns > 0
        }
        assert starts == {"d0": 100.0, "d1": 100.0}

    def test_shift_phase_costs_nothing(self):
        schedule = Schedule()
        schedule.append(ShiftPhase(1.2, drive_channel(0)))
        assert schedule.duration_ns() == 0.0
        assert schedule.pulse_count() == 0

    def test_barrier_aligns(self):
        schedule = Schedule()
        pulse = Gaussian(100.0, 0.5, 20.0)
        schedule.append(Play(pulse, drive_channel(0)))
        schedule.append(Play(pulse, drive_channel(1)))
        schedule.barrier()
        schedule.append(Play(pulse, drive_channel(1)))
        last = max(t.start_ns for t in schedule.instructions)
        assert last == 100.0

    def test_coupler_channel_order_insensitive(self):
        assert coupler_channel(3, 1) == coupler_channel(1, 3)
        assert str(coupler_channel(1, 3)) == "u1_3"

    def test_occupancy(self):
        schedule = Schedule()
        pulse = Gaussian(100.0, 0.5, 20.0)
        schedule.append(Play(pulse, drive_channel(0)))
        schedule.append(Play(pulse, drive_channel(0)))
        assert schedule.channel_occupancy(drive_channel(0)) == 200.0
        assert schedule.channel_occupancy(drive_channel(1)) == 0.0


class TestLowering:
    def test_virtual_z_is_zero_duration(self):
        device = ibmq5_tenerife()
        circuit = Circuit(device.num_qubits)
        circuit.add("u1", (0,), (0.7,))
        schedule = lower_to_pulses(circuit, device)
        assert schedule.duration_ns() == 0.0
        assert schedule.pulse_count() == 0

    def test_u3_is_two_pulses(self):
        device = ibmq5_tenerife()
        circuit = Circuit(device.num_qubits)
        circuit.add("u3", (0,), (0.3, 0.1, -0.2))
        schedule = lower_to_pulses(circuit, device)
        assert schedule.pulse_count() == 2
        assert schedule.duration_ns() == pytest.approx(72.0)

    def test_compiled_bv4_schedules_on_all_vendors(self):
        circuit, _ = bernstein_vazirani(4)
        for device in (ibmq5_tenerife(), rigetti_agave(), umd_trapped_ion()):
            program = compile_circuit(circuit, device)
            schedule = lower_to_pulses(program.circuit, device)
            assert schedule.duration_ns() > 0
            # Pulse count at the schedule level matches the compiler's
            # 1Q pulse metric plus 2Q + measurement pulses.
            plays_2q = sum(
                1
                for t in schedule.instructions
                if isinstance(t.instruction, Play)
                and t.instruction.channel.kind == "u"
            )
            assert plays_2q == program.two_qubit_gate_count()

    def test_trapped_ion_schedules_are_slow(self):
        # Microseconds vs nanoseconds: the technology gap of Figure 1.
        circuit, _ = bernstein_vazirani(4)
        ibm = compile_circuit(circuit, ibmq5_tenerife())
        umd = compile_circuit(circuit, umd_trapped_ion())
        t_ibm = lower_to_pulses(ibm.circuit, ibm.device).duration_ns()
        t_umd = lower_to_pulses(umd.circuit, umd.device).duration_ns()
        assert t_umd > 100 * t_ibm

    def test_rejects_untranslated(self):
        device = ibmq5_tenerife()
        circuit = Circuit(device.num_qubits).h(0)
        with pytest.raises(ValueError, match="translate"):
            lower_to_pulses(circuit, device)

    def test_describe_listing(self):
        device = ibmq5_tenerife()
        circuit = Circuit(device.num_qubits)
        circuit.add("u2", (0,), (0.0, 0.0)).cx(1, 0)
        schedule = lower_to_pulses(circuit, device)
        text = schedule.describe()
        assert "play" in text and "shift_phase" in text
        assert "u0_1" in text

    def test_parallel_gates_overlap_in_time(self):
        device = ibmq5_tenerife()
        circuit = Circuit(device.num_qubits)
        circuit.add("u2", (0,), (0.0, 0.0))
        circuit.add("u2", (3,), (0.0, 0.0))
        schedule = lower_to_pulses(circuit, device)
        # Two disjoint 1Q gates: total duration is one pulse, not two.
        calibration = default_calibration(device)
        assert schedule.duration_ns() == calibration.x90_duration_ns

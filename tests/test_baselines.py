"""Tests for the Qiskit-like and Quil-like vendor baselines."""

import pytest

from repro.baselines import QiskitLikeCompiler, QuilLikeCompiler
from repro.compiler import OptimizationLevel, compile_circuit
from repro.devices import ibmq14_melbourne, rigetti_agave, rigetti_aspen1
from repro.programs import bernstein_vazirani, qft_benchmark
from repro.sim import ideal_distribution


class TestQiskitLike:
    def test_semantics_preserved(self):
        circuit, correct = bernstein_vazirani(6)
        program = QiskitLikeCompiler(ibmq14_melbourne()).compile(circuit)
        assert ideal_distribution(program.circuit)[correct] == pytest.approx(
            1.0
        )

    def test_lexicographic_mapping(self):
        # The documented weakness: always the first few qubits.
        circuit, _ = bernstein_vazirani(6)
        program = QiskitLikeCompiler(ibmq14_melbourne()).compile(circuit)
        assert program.initial_mapping.placement == (0, 1, 2, 3, 4, 5)

    def test_output_software_visible(self):
        device = ibmq14_melbourne()
        circuit, _ = qft_benchmark(4)
        program = QiskitLikeCompiler(device).compile(circuit)
        for inst in program.circuit:
            assert device.gate_set.supports(inst.name)

    def test_2q_on_coupled_pairs(self):
        device = ibmq14_melbourne()
        circuit, _ = bernstein_vazirani(8)
        program = QiskitLikeCompiler(device).compile(circuit)
        for inst in program.circuit:
            if inst.is_unitary and inst.num_qubits == 2:
                assert device.topology.are_coupled(*inst.qubits)

    def test_label(self):
        circuit, _ = bernstein_vazirani(4)
        program = QiskitLikeCompiler(ibmq14_melbourne()).compile(circuit)
        assert program.level == "Qiskit"

    def test_seed_changes_tie_breaks(self):
        circuit, _ = bernstein_vazirani(8)
        device = ibmq14_melbourne()
        a = QiskitLikeCompiler(device, seed=0).compile(circuit)
        b = QiskitLikeCompiler(device, seed=0).compile(circuit)
        assert [str(i) for i in a.circuit] == [str(i) for i in b.circuit]

    def test_triq_beats_qiskit_on_bv(self):
        # The headline claim, at the gate-count level: TriQ's mapped BV
        # uses far fewer 2Q gates than lexicographic placement.
        device = ibmq14_melbourne()
        circuit, _ = bernstein_vazirani(8)
        qiskit = QiskitLikeCompiler(device).compile(circuit)
        triq = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN
        )
        assert (
            triq.two_qubit_gate_count() < qiskit.two_qubit_gate_count() / 2
        )


class TestQuilLike:
    def test_semantics_preserved(self):
        circuit, correct = bernstein_vazirani(4)
        program = QuilLikeCompiler(rigetti_agave()).compile(circuit)
        assert ideal_distribution(program.circuit)[correct] == pytest.approx(
            1.0
        )

    def test_output_software_visible(self):
        device = rigetti_aspen1()
        circuit, _ = qft_benchmark(4)
        program = QuilLikeCompiler(device).compile(circuit)
        for inst in program.circuit:
            assert device.gate_set.supports(inst.name)

    def test_2q_on_coupled_pairs(self):
        device = rigetti_aspen1()
        circuit, _ = bernstein_vazirani(8)
        program = QuilLikeCompiler(device).compile(circuit)
        for inst in program.circuit:
            if inst.is_unitary and inst.num_qubits == 2:
                assert device.topology.are_coupled(*inst.qubits)

    def test_executable_is_quil(self):
        circuit, _ = bernstein_vazirani(4)
        program = QuilLikeCompiler(rigetti_agave()).compile(circuit)
        assert "DECLARE ro" in program.executable()

    def test_noise_blind(self):
        # The baseline never reads calibration data: placement is the
        # same on every noise day.
        circuit, _ = bernstein_vazirani(8)
        placements = {
            QuilLikeCompiler(rigetti_aspen1(day)).compile(circuit)
            .initial_mapping.placement
            for day in range(4)
        }
        assert len(placements) == 1

"""Tests for the circuit dependency DAG."""

from hypothesis import given, strategies as st

from repro.ir import Circuit
from repro.ir.dag import CircuitDag, interaction_counts, interaction_pairs


def random_circuit_strategy(num_qubits: int = 4, max_gates: int = 30):
    gate = st.one_of(
        st.tuples(st.just("h"), st.integers(0, num_qubits - 1)),
        st.tuples(
            st.just("cx"),
            st.integers(0, num_qubits - 1),
            st.integers(0, num_qubits - 1),
        ).filter(lambda t: t[1] != t[2]),
    )
    return st.lists(gate, max_size=max_gates).map(_build)


def _build(gates):
    circ = Circuit(4)
    for gate in gates:
        if gate[0] == "h":
            circ.h(gate[1])
        else:
            circ.cx(gate[1], gate[2])
    return circ


class TestTopologicalOrder:
    def test_respects_qubit_order(self):
        circ = Circuit(2).h(0).cx(0, 1).h(1)
        order = CircuitDag(circ).topological_order()
        assert order.index(0) < order.index(1) < order.index(2)

    def test_independent_gates_keep_program_order(self):
        circ = Circuit(2).h(1).h(0)
        order = CircuitDag(circ).topological_order()
        assert order == [0, 1]

    @given(random_circuit_strategy())
    def test_order_is_valid(self, circ):
        order = CircuitDag(circ).topological_order()
        assert sorted(order) == list(range(len(circ)))
        position = {idx: pos for pos, idx in enumerate(order)}
        last_on_qubit = {}
        for idx, inst in enumerate(circ):
            for q in inst.qubits:
                if q in last_on_qubit:
                    assert position[last_on_qubit[q]] < position[idx]
                last_on_qubit[q] = idx


class TestLayers:
    def test_parallel_hadamards_one_layer(self):
        circ = Circuit(3).h(0).h(1).h(2)
        layers = CircuitDag(circ).layers()
        assert len(layers) == 1
        assert sorted(layers[0]) == [0, 1, 2]

    def test_bv4_layering(self):
        # Figure 5: X first on the ancilla, H's in parallel, then CXs.
        from repro.programs import bernstein_vazirani

        circ, _ = bernstein_vazirani(4)
        dag = CircuitDag(circ)
        layers = dag.layers()
        assert dag.critical_path_length() == len(layers)
        # First layer holds the data H's and the ancilla X.
        first_names = {circ[i].name for i in layers[0]}
        assert first_names == {"h", "x"}

    def test_barrier_forces_new_layer(self):
        circ = Circuit(2).h(0)
        circ.barrier()
        circ.h(1)
        layers = CircuitDag(circ).layers()
        # h(1) must come after the barrier layer.
        assert len(layers) == 3


class TestInteractions:
    def test_counts(self):
        circ = Circuit(3).cx(0, 1).cx(1, 0).cx(1, 2)
        counts = interaction_counts(circ)
        assert counts[frozenset((0, 1))] == 2
        assert counts[frozenset((1, 2))] == 1

    def test_pairs_first_seen_order(self):
        circ = Circuit(3).cx(1, 2).cx(0, 1).cx(2, 1)
        assert interaction_pairs(circ) == (
            frozenset((1, 2)),
            frozenset((0, 1)),
        )

    def test_measure_not_counted(self):
        circ = Circuit(2).cx(0, 1).measure_all()
        assert sum(interaction_counts(circ).values()) == 1

"""Full-stack integration: Scaffold source -> TriQ -> executable -> sim.

This is the paper's Figure 4 pipeline end to end, exercised on real
study devices across all three vendors.
"""

import pytest

from repro import (
    OptimizationLevel,
    all_devices,
    compile_circuit,
    ibmq14_melbourne,
    ibmq16_rueschlikon,
    rigetti_aspen3,
    standard_suite,
    umd_trapped_ion,
)
from repro.backends import parse_openqasm, parse_quil, parse_umdti_asm
from repro.scaffold import compile_scaffold
from repro.sim import ideal_distribution, monte_carlo_success_rate

TOFFOLI_SCAFFOLD = """
// Toffoli benchmark: inputs |110>, expected |111>.
module main(qbit q[3]) {
    X(q[0]); X(q[1]);
    Toffoli(q[0], q[1], q[2]);
    MeasZ(q);
}
"""

ADDER_SCAFFOLD = """
// One-bit Cuccaro adder, a = b = 1.
module maj(qbit c, qbit b, qbit a) {
    CNOT(a, b); CNOT(a, c); Toffoli(c, b, a);
}
module uma(qbit c, qbit b, qbit a) {
    Toffoli(c, b, a); CNOT(a, c); CNOT(c, b);
}
module main(qbit cin, qbit a, qbit b, qbit cout) {
    PrepZ(a, 1); PrepZ(b, 1);
    maj(cin, b, a);
    CNOT(a, cout);
    uma(cin, b, a);
    MeasZ(cin); MeasZ(a); MeasZ(b); MeasZ(cout);
}
"""


class TestScaffoldToHardware:
    @pytest.mark.parametrize(
        "factory,parser",
        [
            (ibmq14_melbourne, parse_openqasm),
            (rigetti_aspen3, parse_quil),
            (umd_trapped_ion, parse_umdti_asm),
        ],
        ids=["ibm", "rigetti", "umdti"],
    )
    def test_toffoli_from_source_to_executable(self, factory, parser):
        device = factory()
        circuit = compile_scaffold(TOFFOLI_SCAFFOLD)
        program = compile_circuit(circuit, device)
        parsed = parser(program.executable())
        assert ideal_distribution(parsed)["111"] == pytest.approx(
            1.0, abs=1e-6
        )

    def test_adder_from_source(self):
        circuit = compile_scaffold(ADDER_SCAFFOLD)
        program = compile_circuit(circuit, ibmq16_rueschlikon())
        assert ideal_distribution(program.circuit)["0101"] == pytest.approx(
            1.0
        )


class TestCrossPlatformOrderings:
    """The paper's qualitative conclusions must hold on the substrate."""

    def test_noise_adaptive_beats_qiskit_like_on_ibm(self):
        from repro.baselines import QiskitLikeCompiler
        from repro.programs import bernstein_vazirani

        device = ibmq14_melbourne()
        circuit, correct = bernstein_vazirani(8)
        qiskit = QiskitLikeCompiler(device).compile(circuit)
        triq = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN
        )
        sr_qiskit = monte_carlo_success_rate(
            qiskit.circuit, device, correct, fault_samples=60
        ).success_rate
        sr_triq = monte_carlo_success_rate(
            triq.circuit, device, correct, fault_samples=60
        ).success_rate
        assert sr_triq > sr_qiskit * 1.5

    def test_umdti_beats_superconducting_on_3q_benchmarks(self):
        # Figure 12: low gate errors + full connectivity lead on UMDTI.
        from repro.programs import fredkin_benchmark

        circuit, correct = fredkin_benchmark()
        rates = {}
        for device in (umd_trapped_ion(), ibmq14_melbourne()):
            program = compile_circuit(circuit, device)
            rates[device.name] = monte_carlo_success_rate(
                program.circuit, device, correct, fault_samples=60
            ).success_rate
        assert rates["UMD Trapped Ion"] > rates["IBM Q14 Melbourne"]

    def test_every_study_device_compiles_the_fitting_suite(self):
        for device in all_devices():
            for benchmark in standard_suite():
                circuit, correct = benchmark.build()
                if circuit.num_qubits > device.num_qubits:
                    continue
                program = compile_circuit(
                    circuit, device, level=OptimizationLevel.OPT_1QC
                )
                assert program.two_qubit_gate_count() >= 0
                assert len(program.executable()) > 0

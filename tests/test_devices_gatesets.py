"""Tests for vendor gate-set descriptions (paper Figure 2)."""

import pytest

from repro.devices.gatesets import (
    GATESET_BY_FAMILY,
    IBM_GATESET,
    RIGETTI_GATESET,
    UMDTI_GATESET,
    VendorFamily,
)


class TestFamilies:
    def test_three_families(self):
        assert set(GATESET_BY_FAMILY) == {
            VendorFamily.IBM,
            VendorFamily.RIGETTI,
            VendorFamily.UMDTI,
        }

    def test_family_values(self):
        assert VendorFamily("ibm") is VendorFamily.IBM
        with pytest.raises(ValueError):
            VendorFamily("google")


class TestFigure2Facts:
    def test_two_qubit_gates(self):
        assert IBM_GATESET.two_qubit_gate == "cx"
        assert RIGETTI_GATESET.two_qubit_gate == "cz"
        assert UMDTI_GATESET.two_qubit_gate == "xx"

    def test_software_visible_membership(self):
        assert IBM_GATESET.supports("u3")
        assert not IBM_GATESET.supports("cz")
        assert RIGETTI_GATESET.supports("cz")
        assert not RIGETTI_GATESET.supports("u3")
        assert UMDTI_GATESET.supports("rxy")
        assert not UMDTI_GATESET.supports("cx")

    def test_measure_and_barrier_everywhere(self):
        for gate_set in GATESET_BY_FAMILY.values():
            assert gate_set.supports("measure")
            assert gate_set.supports("barrier")

    def test_only_umdti_has_arbitrary_xy(self):
        assert UMDTI_GATESET.arbitrary_xy_rotation
        assert not IBM_GATESET.arbitrary_xy_rotation
        assert not RIGETTI_GATESET.arbitrary_xy_rotation

    def test_pulse_budgets(self):
        assert UMDTI_GATESET.max_pulses_per_rotation == 1
        assert IBM_GATESET.max_pulses_per_rotation == 2
        assert RIGETTI_GATESET.max_pulses_per_rotation == 2

    def test_cnot_framing_costs(self):
        # IBM's CNOT is native; Rigetti and UMD pay 1Q framing per CNOT.
        assert IBM_GATESET.framing_1q_gates_per_cnot == 0
        assert RIGETTI_GATESET.framing_1q_gates_per_cnot > 0
        assert UMDTI_GATESET.framing_1q_gates_per_cnot > 0

"""End-to-end pipeline tests: every level, every vendor, semantics."""

import pytest

from tests.helpers import make_device
from repro.compiler import (
    OptimizationLevel,
    TriQCompiler,
    compile_circuit,
)
from repro.devices import (
    Topology,
    ibmq5_tenerife,
    ibmq14_melbourne,
    rigetti_agave,
    umd_trapped_ion,
)
from repro.programs import bernstein_vazirani, toffoli_benchmark
from repro.sim import ideal_distribution

LEVELS = list(OptimizationLevel)
DEVICES = [
    ibmq5_tenerife,
    ibmq14_melbourne,
    rigetti_agave,
    umd_trapped_ion,
]


class TestLevelFlags:
    def test_table1_structure(self):
        assert not OptimizationLevel.N.optimizes_1q
        assert OptimizationLevel.OPT_1Q.optimizes_1q
        assert not OptimizationLevel.OPT_1Q.optimizes_communication
        assert OptimizationLevel.OPT_1QC.optimizes_communication
        assert not OptimizationLevel.OPT_1QC.noise_aware
        assert OptimizationLevel.OPT_1QCN.noise_aware


@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.value)
@pytest.mark.parametrize("factory", DEVICES, ids=lambda f: f.__name__)
class TestSemanticsAcrossStack:
    def test_bv4_correct_everywhere(self, level, factory):
        device = factory()
        circuit, correct = bernstein_vazirani(4)
        program = compile_circuit(circuit, device, level=level)
        distribution = ideal_distribution(program.circuit)
        assert distribution[correct] == pytest.approx(1.0, abs=1e-9)

    def test_output_is_software_visible(self, level, factory):
        device = factory()
        circuit, _ = toffoli_benchmark()
        program = compile_circuit(circuit, device, level=level)
        for inst in program.circuit:
            assert device.gate_set.supports(inst.name), inst.name


class TestOptimizationOrdering:
    def test_1qopt_reduces_pulses(self):
        device = ibmq14_melbourne()
        circuit, _ = bernstein_vazirani(6)
        naive = compile_circuit(circuit, device, level=OptimizationLevel.N)
        opt = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1Q
        )
        assert opt.one_qubit_pulse_count() < naive.one_qubit_pulse_count()
        # 1Q optimization does not change the 2Q gate structure.
        assert opt.two_qubit_gate_count() == naive.two_qubit_gate_count()

    def test_comm_opt_reduces_2q_gates_on_sparse_topology(self):
        device = ibmq14_melbourne()
        circuit, _ = bernstein_vazirani(6)
        default = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1Q
        )
        comm = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QC
        )
        assert comm.two_qubit_gate_count() < default.two_qubit_gate_count()

    def test_fully_connected_needs_no_swaps_at_any_level(self):
        device = umd_trapped_ion()
        circuit, _ = bernstein_vazirani(5)
        for level in LEVELS:
            program = compile_circuit(circuit, device, level=level)
            assert program.num_swaps == 0

    def test_noise_aware_avoids_bad_edges(self):
        # Device with one great edge and otherwise bad ones: the
        # noise-aware mapper must use the great edge for a 2-qubit job.
        device = make_device(Topology.line(4), two_qubit_error=0.3)
        cal = device.calibration()
        cal.two_qubit_error[frozenset((2, 3))] = 0.02
        circuit, _ = bernstein_vazirani(2)
        program = compile_circuit(
            circuit, device, level=OptimizationLevel.OPT_1QCN
        )
        used = {
            frozenset(i.qubits)
            for i in program.circuit
            if i.is_unitary and i.num_qubits == 2
        }
        assert used == {frozenset((2, 3))}


class TestCompiledProgram:
    def test_metadata(self):
        device = rigetti_agave()
        circuit, _ = toffoli_benchmark()
        program = compile_circuit(circuit, device)
        assert program.source_name == "toffoli"
        assert program.level is OptimizationLevel.OPT_1QCN
        assert program.compile_time_s > 0
        assert program.depth() > 0
        assert len(program.final_placement) == circuit.num_qubits

    def test_executable_formats(self):
        circuit, _ = toffoli_benchmark()
        assert "OPENQASM" in compile_circuit(
            circuit, ibmq5_tenerife()
        ).executable()
        assert "DECLARE ro" in compile_circuit(
            circuit, rigetti_agave()
        ).executable()
        assert "XX" in compile_circuit(
            circuit, umd_trapped_ion()
        ).executable()

    def test_compilation_deterministic(self):
        device = ibmq14_melbourne()
        circuit, _ = bernstein_vazirani(6)
        a = compile_circuit(circuit, device)
        b = compile_circuit(circuit, device)
        assert [str(i) for i in a.circuit] == [str(i) for i in b.circuit]

    def test_day_changes_noise_aware_output(self):
        # Recompiling with fresh calibration data can change placement
        # (the paper recompiles before each experiment).
        device = ibmq14_melbourne()
        circuit, _ = bernstein_vazirani(6)
        placements = {
            compile_circuit(
                circuit, device, level=OptimizationLevel.OPT_1QCN, day=day
            ).initial_mapping.placement
            for day in range(6)
        }
        assert len(placements) > 1

    def test_too_large_circuit_rejected(self):
        circuit, _ = bernstein_vazirani(6)
        with pytest.raises(ValueError, match="needs 6 qubits"):
            compile_circuit(circuit, rigetti_agave())

    def test_reliability_matrices_cached(self):
        device = ibmq14_melbourne()
        compiler = TriQCompiler(device)
        first = compiler.reliability(True)
        assert compiler.reliability(True) is first
        assert compiler.reliability(False) is not first


class TestOptionalPasses:
    def test_peephole_never_increases_2q_count(self):
        from repro.programs import standard_suite

        device = ibmq14_melbourne()
        for benchmark in standard_suite()[:6]:
            circuit, correct = benchmark.build()
            plain = TriQCompiler(device).compile(circuit)
            cleaned = TriQCompiler(device, peephole=True).compile(circuit)
            assert (
                cleaned.two_qubit_gate_count() <= plain.two_qubit_gate_count()
            )
            assert ideal_distribution(cleaned.circuit)[
                correct
            ] == pytest.approx(1.0)

    def test_peephole_removes_source_redundancy(self):
        # The paper's pipeline faithfully compiles redundant input
        # gates; the optional peephole removes them.
        from repro.ir import Circuit

        device = umd_trapped_ion()
        circuit = Circuit(3).cx(0, 1).cx(0, 1).h(2).measure_all()
        plain = TriQCompiler(device).compile(circuit)
        cleaned = TriQCompiler(device, peephole=True).compile(circuit)
        assert plain.two_qubit_gate_count() == 2
        assert cleaned.two_qubit_gate_count() == 0
        distribution = ideal_distribution(cleaned.circuit)
        assert distribution["000"] == pytest.approx(0.5)

    def test_commute_option_preserves_semantics_and_pulses(self):
        from repro.programs import standard_suite

        device = ibmq14_melbourne()
        for benchmark in standard_suite()[:5]:
            circuit, correct = benchmark.build()
            plain = TriQCompiler(device).compile(circuit)
            commuted = TriQCompiler(device, commute=True).compile(circuit)
            assert commuted.one_qubit_pulse_count() <= (
                plain.one_qubit_pulse_count()
            )
            assert ideal_distribution(commuted.circuit)[
                correct
            ] == pytest.approx(1.0)

"""Unit tests for the section-7 insights experiment module."""

import pytest

from repro.experiments import sec7_insights


@pytest.fixture(scope="module")
def result():
    return sec7_insights.run()


class TestSec7Insights:
    def test_pulse_budgets(self, result):
        assert result.pulses_by_vendor == {
            "ibm": 2, "rigetti": 2, "umdti": 1
        }

    def test_topology_ordering(self, result):
        gates = result.gates_by_topology
        assert gates["full"] <= gates["grid"] <= gates["line"]

    def test_full_connectivity_needs_no_swaps(self, result):
        # QFT4 in the {1Q, cx} basis has 12 CNOTs; full connectivity
        # should need exactly those.
        assert result.gates_by_topology["full"] == 12

    def test_noise_awareness_on_umdti(self, result):
        unaware, aware = result.umdti_min_reliability
        assert aware >= unaware
        assert 0 < unaware <= 1 and 0 < aware <= 1

    def test_fresh_placement_tracks_drift(self, result):
        stale, fresh = result.stale_vs_fresh
        assert fresh >= stale

    def test_formatting(self, result):
        text = sec7_insights.format_result(result)
        assert "Insight 1" in text
        assert "Insight 4" in text

"""Tests for device configuration serialization."""

import json

import pytest

from repro.devices import (
    ibmq5_tenerife,
    rigetti_agave,
    umd_trapped_ion,
)
from repro.devices.config import (
    device_from_dict,
    device_from_json,
    device_to_json,
    load_device,
    save_device,
)
from repro.compiler import compile_circuit
from repro.programs import bernstein_vazirani


def minimal_config():
    return {
        "name": "my 4q line",
        "vendor": "rigetti",
        "num_qubits": 4,
        "edges": [[0, 1], [1, 2], [2, 3]],
        "directed": False,
        "coherence_time_us": 20.0,
        "calibration": {
            "two_qubit_error": {"0-1": 0.05, "1-2": 0.06, "2-3": 0.05},
            "single_qubit_error": [0.002, 0.002, 0.003, 0.002],
            "readout_error": [0.03, 0.04, 0.03, 0.03],
        },
    }


class TestFromDict:
    def test_minimal(self):
        device = device_from_dict(minimal_config())
        assert device.num_qubits == 4
        assert device.vendor.value == "rigetti"
        assert device.calibration().edge_error(1, 2) == pytest.approx(0.06)

    def test_compiles_programs(self):
        device = device_from_dict(minimal_config())
        circuit, correct = bernstein_vazirani(4)
        program = compile_circuit(circuit, device)
        from repro.sim import ideal_distribution

        assert ideal_distribution(program.circuit)[correct] > 0.999

    def test_missing_key(self):
        config = minimal_config()
        del config["calibration"]
        with pytest.raises(KeyError, match="missing key"):
            device_from_dict(config)

    def test_unknown_vendor(self):
        config = minimal_config()
        config["vendor"] = "dwave"
        with pytest.raises(ValueError, match="unknown vendor"):
            device_from_dict(config)

    def test_missing_edge_rate(self):
        config = minimal_config()
        del config["calibration"]["two_qubit_error"]["1-2"]
        with pytest.raises(ValueError, match="missing 2Q error"):
            device_from_dict(config)

    def test_wrong_rate_count(self):
        config = minimal_config()
        config["calibration"]["readout_error"] = [0.01]
        with pytest.raises(ValueError, match="4 rates"):
            device_from_dict(config)

    def test_directed_edges(self):
        config = minimal_config()
        config["vendor"] = "ibm"
        config["directed"] = True
        device = device_from_dict(config)
        assert device.topology.supports_direction(0, 1)
        assert not device.topology.supports_direction(1, 0)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [ibmq5_tenerife, rigetti_agave, umd_trapped_ion],
        ids=lambda f: f.__name__,
    )
    def test_study_devices_roundtrip(self, factory):
        original = factory()
        restored = device_from_json(device_to_json(original))
        assert restored.name == original.name
        assert restored.vendor is original.vendor
        assert restored.num_qubits == original.num_qubits
        assert restored.topology.edges() == original.topology.edges()
        cal_a = original.calibration()
        cal_b = restored.calibration()
        for edge in original.topology.edges():
            assert cal_b.edge_error(*edge) == pytest.approx(
                cal_a.edge_error(*edge)
            )

    def test_directed_directions_survive(self):
        original = ibmq5_tenerife()
        restored = device_from_json(device_to_json(original))
        assert restored.topology.supports_direction(1, 0)
        assert not restored.topology.supports_direction(0, 1)

    def test_json_is_valid(self):
        text = device_to_json(umd_trapped_ion())
        parsed = json.loads(text)
        assert parsed["vendor"] == "umdti"

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "device.json"
        save_device(rigetti_agave(), str(path))
        device = load_device(str(path))
        assert device.name == "Rigetti Agave"

    def test_snapshot_day_selectable(self):
        original = rigetti_agave()
        day0 = device_from_json(device_to_json(original, day=0))
        day3 = device_from_json(device_to_json(original, day=3))
        assert (
            day0.calibration().two_qubit_error
            != day3.calibration().two_qubit_error
        )

"""Tests for the sweep fault-tolerance layer.

Covers the retry policy, structured task failures, worker-crash
isolation, per-task timeouts, checkpoint/resume, calibration input
hardening, cache quarantine, and solver degradation — the behaviors
ISSUE 2 adds on top of the parallel engine.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.cache import open_cache
from repro.compiler import OptimizationLevel, TriQCompiler
from repro.devices import Topology, ibmq5_tenerife
from repro.devices.calibration import Calibration, CalibrationError
from repro.devices.config import (
    device_from_dict,
    device_to_dict,
    load_device,
    save_device,
)
from repro.devices.device import Device
from repro.devices.gatesets import GATESET_BY_FAMILY, VendorFamily
from repro.experiments.faults import (
    FAULT_INJECT_ENV,
    InjectedFault,
    RetryPolicy,
    maybe_inject_fault,
)
from repro.experiments.journal import SweepJournal, run_digest, task_digest
from repro.experiments.parallel import SweepTask, run_sweep
from repro.ir import Circuit
from repro.programs import Benchmark

from tests.helpers import make_device

LEVELS = [OptimizationLevel.N, OptimizationLevel.OPT_1QCN]


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(1.0)
        assert policy.delay(2) == pytest.approx(2.0)
        assert policy.delay(3) == pytest.approx(4.0)

    def test_delay_capped(self):
        policy = RetryPolicy(
            backoff_s=1.0, backoff_factor=10.0, max_backoff_s=5.0, jitter=0.0
        )
        assert policy.delay(10) == pytest.approx(5.0)

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=1.0, jitter=0.25)
        first = policy.delay(1, token="cell-a")
        again = policy.delay(1, token="cell-a")
        other = policy.delay(1, token="cell-b")
        assert first == again  # hash-based, not RNG: reruns reproduce
        assert first != other
        assert 1.0 <= first <= 1.25


# ----------------------------------------------------------------------
# Fault injection hooks
# ----------------------------------------------------------------------
class TestInjection:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
        maybe_inject_fault("BV4", 1)  # must not raise

    def test_error_mode_raises_for_target_only(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "error:BV4")
        maybe_inject_fault("Toffoli", 1)  # different benchmark: no-op
        with pytest.raises(InjectedFault):
            maybe_inject_fault("BV4", 1)

    def test_max_attempt_gates_the_fault(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "error:BV4:1")
        with pytest.raises(InjectedFault):
            maybe_inject_fault("BV4", 1)
        maybe_inject_fault("BV4", 2)  # past max_attempt: healed


# ----------------------------------------------------------------------
# Serial-path failures and retries
# ----------------------------------------------------------------------
class TestSerialFailures:
    def test_error_becomes_structured_failure(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "error:BV4")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "Toffoli"],
            with_success=False,
            backoff_s=0.01,
        )
        assert [m.benchmark for m in report.measurements] == ["Toffoli"]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.benchmark == "BV4"
        assert failure.kind == "error"
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 1
        assert "InjectedFault" in failure.traceback
        assert "BV4" in failure.describe()

    def test_retry_heals_transient_error(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "error:BV4:1")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4"],
            with_success=False,
            retries=1,
            backoff_s=0.01,
        )
        assert not report.failures
        assert report.tasks[0].attempts == 2

    def test_retry_exhaustion_reports_attempts(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "error:BV4")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4"],
            with_success=False,
            retries=2,
            backoff_s=0.01,
        )
        assert len(report.failures) == 1
        assert report.failures[0].attempts == 3


# ----------------------------------------------------------------------
# Serial fallback is explained, never silent
# ----------------------------------------------------------------------
class TestFallbackReason:
    def test_workers_one_reason(self):
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4"],
            with_success=False,
        )
        assert report.fallback_reason == "workers=1 requested"

    def test_adhoc_benchmark_reason_names_the_benchmark(self):
        adhoc = Benchmark(
            name="adhoc-ghz3",
            factory=lambda: (
                Circuit(3, name="adhoc-ghz3").h(0).cx(0, 1).cx(1, 2)
                .measure_all(),
                "000",
            ),
            interaction_shape="chain",
        )
        report = run_sweep(
            ibmq5_tenerife(),
            LEVELS,
            benchmarks=[adhoc],
            workers=4,
            with_success=False,
        )
        assert report.mode == "serial"
        assert "adhoc-ghz3" in report.fallback_reason
        assert "pickle" in report.fallback_reason

    def test_adhoc_device_reason_names_the_device(self):
        device = make_device(Topology.line(5), VendorFamily.IBM)
        report = run_sweep(
            device,
            LEVELS,
            benchmarks=["BV4", "Toffoli"],
            workers=4,
            with_success=False,
        )
        assert report.mode == "serial"
        assert "test device" in report.fallback_reason


# ----------------------------------------------------------------------
# Pool-mode crash isolation and timeouts
# ----------------------------------------------------------------------
class TestPoolFaults:
    def test_worker_crash_poisons_only_its_task(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "crash:BV4")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "Toffoli", "Fredkin"],
            workers=2,
            with_success=False,
            backoff_s=0.01,
        )
        assert report.mode == "process-pool"
        assert sorted(m.benchmark for m in report.measurements) == [
            "Fredkin",
            "Toffoli",
        ]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.benchmark == "BV4"
        assert failure.kind == "crash"
        assert "73" in failure.message  # the injected exit code

    def test_worker_crash_retried_to_success(self, monkeypatch):
        # Baseline first: injection must NOT be active while the serial
        # reference run executes in this very process.
        monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
        clean = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "Toffoli"],
            with_success=False,
        )
        monkeypatch.setenv(FAULT_INJECT_ENV, "crash:BV4:1")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "Toffoli"],
            workers=2,
            with_success=False,
            retries=1,
            backoff_s=0.01,
        )
        assert not report.failures
        by_name = {m.benchmark: m for m in report.measurements}
        clean_by_name = {m.benchmark: m for m in clean.measurements}
        # The retried cell is byte-identical to a first-try run.
        for name in ("BV4", "Toffoli"):
            got = replace(by_name[name], compile_time_s=0.0)
            want = replace(clean_by_name[name], compile_time_s=0.0)
            assert got == want

    def test_hung_task_times_out(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "hang:BV4")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "Toffoli"],
            workers=2,
            with_success=False,
            task_timeout_s=1.5,
            backoff_s=0.01,
        )
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.benchmark == "BV4"
        assert failure.kind == "timeout"
        assert [m.benchmark for m in report.measurements] == ["Toffoli"]

    def test_hung_task_heals_on_retry(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "hang:BV4:1")
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4", "Toffoli"],
            workers=2,
            with_success=False,
            task_timeout_s=1.5,
            retries=1,
            backoff_s=0.01,
        )
        assert not report.failures
        assert sorted(m.benchmark for m in report.measurements) == [
            "BV4",
            "Toffoli",
        ]


# ----------------------------------------------------------------------
# Checkpoint journal and resume
# ----------------------------------------------------------------------
class TestJournal:
    def test_record_load_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path / "run.jsonl")
        journal.record("abc", {"benchmark": "BV4"}, {"attempts": 1})
        journal.record("def", {"benchmark": "Toffoli"}, {"attempts": 2})
        journal.close()
        completed = journal.load()
        assert set(completed) == {"abc", "def"}
        assert completed["abc"]["measurement"] == {"benchmark": "BV4"}

    def test_corrupt_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = SweepJournal(path)
        journal.record("abc", {"benchmark": "BV4"}, {"attempts": 1})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "task": "torn')  # killed mid-write
        assert set(journal.load()) == {"abc"}

    def test_torn_final_line_warns_and_loads_rest(self, tmp_path):
        """A kill mid-append loses only the torn record, with a warning."""
        path = tmp_path / "run.jsonl"
        journal = SweepJournal(path)
        journal.record("abc", {"benchmark": "BV4"}, {"attempts": 1})
        journal.record("def", {"benchmark": "HS2"}, {"attempts": 1})
        journal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])  # tear the final record mid-json
        with pytest.warns(RuntimeWarning, match="torn write"):
            completed = SweepJournal(path).load()
        assert set(completed) == {"abc"}

    def test_torn_multibyte_utf8_tolerated(self, tmp_path):
        """A tear inside a multi-byte sequence must not raise on decode."""
        path = tmp_path / "run.jsonl"
        journal = SweepJournal(path)
        journal.record("abc", {"benchmark": "BV4"}, {"attempts": 1})
        journal.close()
        with open(path, "ab") as handle:
            # First byte of a two-byte UTF-8 sequence, then nothing.
            handle.write(b'{"v": 1, "task": "caf\xc3')
        with pytest.warns(RuntimeWarning):
            completed = SweepJournal(path).load()
        assert set(completed) == {"abc"}

    def test_corrupt_middle_line_warns_with_position(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = SweepJournal(path)
        journal.record("abc", {"benchmark": "BV4"}, {"attempts": 1})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        journal2 = SweepJournal(path)
        journal2.record("def", {"benchmark": "HS2"}, {"attempts": 1})
        journal2.record("ghi", {"benchmark": "QFT5"}, {"attempts": 1})
        journal2.close()
        with pytest.warns(RuntimeWarning, match="corrupt line 2"):
            completed = SweepJournal(path).load()
        assert set(completed) == {"abc", "def", "ghi"}

    def test_version_mismatch_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"v": 999, "task": "abc", "measurement": {}}) + "\n"
        )
        assert SweepJournal(path).load() == {}

    def test_task_digest_pins_cell_content(self):
        task = SweepTask(
            benchmark="BV4",
            device="ibmq5 tenerife",
            day=0,
            compiler="TriQ-N",
            fault_samples=100,
            with_success=False,
            compile_seed=0,
            mc_seed=1234,
        )
        assert task_digest(task) == task_digest(task)
        changed = replace(task, mc_seed=99)
        assert task_digest(task) != task_digest(changed)

    def test_run_digest_is_short_and_stable(self):
        a = run_digest("tenerife", [0], ["TriQ-N"])
        b = run_digest("tenerife", [0], ["TriQ-N"])
        assert a == b
        assert len(a) == 12
        assert a != run_digest("tenerife", [1], ["TriQ-N"])


class TestResume:
    def test_resume_replays_only_finished_cells(self, tmp_path, monkeypatch):
        device = ibmq5_tenerife()
        kwargs = dict(
            benchmarks=["BV4", "Toffoli", "Fredkin"],
            with_success=False,
            cache=open_cache(tmp_path / "cache"),
        )
        monkeypatch.setenv(FAULT_INJECT_ENV, "crash:BV4")
        first = run_sweep(
            device, [OptimizationLevel.N], workers=2, backoff_s=0.01, **kwargs
        )
        assert first.run_id
        assert len(first.failures) == 1
        journal_path = tmp_path / "cache" / "journals" / (
            first.run_id + ".jsonl"
        )
        assert journal_path.exists()

        monkeypatch.delenv(FAULT_INJECT_ENV)
        second = run_sweep(
            device, [OptimizationLevel.N], resume=True, **kwargs
        )
        assert second.run_id == first.run_id
        assert not second.failures
        assert second.resumed == 2  # Toffoli and Fredkin replayed
        resumed_flags = {
            t.benchmark: t.resumed for t in second.tasks
        }
        assert resumed_flags == {
            "BV4": False,  # the crashed cell is the only one recomputed
            "Toffoli": True,
            "Fredkin": True,
        }
        clean = run_sweep(device, [OptimizationLevel.N], **kwargs)

        # cache_hit legitimately differs (the crashed cell compiled
        # cold during resume, warm in the later clean run); everything
        # the paper plots must be identical.
        def comparable(measurements):
            return [
                replace(m, compile_time_s=0.0, cache_hit=None)
                for m in measurements
            ]

        assert comparable(second.measurements) == comparable(
            clean.measurements
        )

    def test_fresh_run_resets_journal(self, tmp_path):
        device = ibmq5_tenerife()
        kwargs = dict(
            benchmarks=["BV4"],
            with_success=False,
            cache=open_cache(tmp_path / "cache"),
        )
        run_sweep(device, [OptimizationLevel.N], **kwargs)
        report = run_sweep(device, [OptimizationLevel.N], **kwargs)
        assert report.resumed == 0  # resume=False recomputes everything


# ----------------------------------------------------------------------
# Calibration input hardening
# ----------------------------------------------------------------------
def _line3_calibration(**overrides):
    topology = Topology.line(3)
    data = dict(
        two_qubit_error={e: 0.05 for e in topology.edges()},
        single_qubit_error={q: 0.002 for q in range(3)},
        readout_error={q: 0.03 for q in range(3)},
    )
    data.update(overrides)
    return Calibration(**data)


class TestCalibrationValidation:
    def test_valid_calibration_passes_and_chains(self):
        calibration = _line3_calibration()
        assert calibration.validate() is calibration

    def test_nan_rate_rejected_with_location(self):
        calibration = _line3_calibration(
            two_qubit_error={
                frozenset((0, 1)): float("nan"),
                frozenset((1, 2)): 0.05,
            }
        )
        with pytest.raises(CalibrationError, match=r"edge \(0, 1\)"):
            calibration.validate()

    def test_negative_rate_rejected(self):
        calibration = _line3_calibration(
            readout_error={0: 0.03, 1: -0.2, 2: 0.03}
        )
        with pytest.raises(CalibrationError, match="qubit 1.*negative"):
            calibration.validate()

    def test_rate_above_one_rejected(self):
        calibration = _line3_calibration(
            single_qubit_error={0: 0.002, 1: 0.002, 2: 1.5}
        )
        with pytest.raises(CalibrationError, match=r"\[0, 1\]"):
            calibration.validate()

    def test_all_problems_reported_at_once(self):
        calibration = _line3_calibration(
            single_qubit_error={0: float("inf"), 1: -1.0, 2: 0.002}
        )
        with pytest.raises(CalibrationError) as excinfo:
            calibration.validate()
        message = str(excinfo.value)
        assert "qubit 0" in message and "qubit 1" in message

    def test_device_config_rejects_bad_rates(self):
        data = device_to_dict(make_device(Topology.line(3)))
        data["calibration"]["readout_error"][1] = math.nan
        with pytest.raises(CalibrationError, match="readout error on qubit 1"):
            device_from_dict(data)

    def test_save_load_roundtrip_is_atomic_write(self, tmp_path):
        device = make_device(Topology.line(3))
        path = tmp_path / "dev.json"
        save_device(device, str(path))
        loaded = load_device(str(path))
        assert loaded.name == device.name
        # No temp droppings left behind by the atomic write.
        assert [p.name for p in tmp_path.iterdir()] == ["dev.json"]


class _FlakyFeed:
    """A calibration feed that corrupts specific days."""

    def __init__(self, calibration, bad_days):
        self._calibration = calibration
        self._bad_days = set(bad_days)

    def snapshot(self, day=0):
        calibration = replace(self._calibration, day=day)
        if day in self._bad_days:
            broken = dict(calibration.readout_error)
            broken[0] = float("nan")
            calibration = replace(calibration, readout_error=broken)
        return calibration


def _flaky_device(bad_days):
    topology = Topology.line(5)
    return Device(
        name="flaky device",
        gate_set=GATESET_BY_FAMILY[VendorFamily.IBM],
        topology=topology,
        calibration_model=_FlakyFeed(_line5_calibration(topology), bad_days),
        coherence_time_us=100.0,
    )


def _line5_calibration(topology):
    return Calibration(
        two_qubit_error={e: 0.05 for e in topology.edges()},
        single_qubit_error={q: 0.002 for q in range(5)},
        readout_error={q: 0.03 for q in range(5)},
    )


class TestBadDays:
    def test_bad_day_raises_by_default(self):
        with pytest.raises(CalibrationError, match="day 1"):
            run_sweep(
                _flaky_device(bad_days=[1]),
                [OptimizationLevel.N],
                benchmarks=["BV4"],
                days=[0, 1],
                with_success=False,
            )

    def test_skip_bad_days_records_and_continues(self):
        report = run_sweep(
            _flaky_device(bad_days=[1]),
            [OptimizationLevel.N],
            benchmarks=["BV4"],
            days=[0, 1, 2],
            skip_bad_days=True,
            with_success=False,
        )
        assert [day for day, _ in report.skipped_days] == [1]
        assert "readout error on qubit 0" in report.skipped_days[0][1]
        assert [m.day for m in report.measurements] == [0, 2]

    def test_multi_day_grid_orders_day_innermost(self):
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.N],
            benchmarks=["BV4"],
            days=[0, 1],
            with_success=False,
        )
        assert [(m.benchmark, m.day) for m in report.measurements] == [
            ("BV4", 0),
            ("BV4", 1),
        ]


# ----------------------------------------------------------------------
# Cache quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_corrupt_entry_moved_to_quarantine(self, tmp_path):
        cache = open_cache(tmp_path / "cache")
        cache.put("cell", {"value": 41})
        entry = next((tmp_path / "cache").rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        assert cache.get("cell") is None
        assert not entry.exists()
        quarantined = list(cache.quarantine_dir.iterdir())
        assert [p.name for p in quarantined] == [entry.name]
        # The slot is reusable after quarantine.
        cache.put("cell", {"value": 42})
        assert cache.get("cell") == {"value": 42}


# ----------------------------------------------------------------------
# Solver degradation is recorded, not hidden
# ----------------------------------------------------------------------
class TestDegradation:
    def test_smt_failure_degrades_to_default_mapping(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr("repro.compiler.pipeline.smt_mapping", boom)
        device = ibmq5_tenerife()
        circuit = Circuit(3, name="ghz").h(0).cx(0, 1).cx(1, 2).measure_all()
        program = TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN
        ).compile(circuit)
        assert program.initial_mapping.degraded
        assert program.initial_mapping.placement == (0, 1, 2)

    def test_degraded_flag_survives_cache_roundtrip(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr("repro.compiler.pipeline.smt_mapping", boom)
        device = ibmq5_tenerife()
        circuit = Circuit(3, name="ghz").h(0).cx(0, 1).cx(1, 2).measure_all()
        program = TriQCompiler(
            device, level=OptimizationLevel.OPT_1QCN
        ).compile(circuit)
        payload = program.to_payload()
        restored = type(program).from_payload(payload, device)
        assert restored.initial_mapping.degraded

    def test_old_payload_without_flag_defaults_clean(self):
        device = ibmq5_tenerife()
        circuit = Circuit(2, name="bell").h(0).cx(0, 1).measure_all()
        program = TriQCompiler(
            device, level=OptimizationLevel.N
        ).compile(circuit)
        payload = program.to_payload()
        del payload["degraded"]  # entries written before the flag
        restored = type(program).from_payload(payload, device)
        assert restored.initial_mapping.degraded is False

    def test_measurement_carries_degraded_flag(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr("repro.compiler.pipeline.smt_mapping", boom)
        report = run_sweep(
            ibmq5_tenerife(),
            [OptimizationLevel.OPT_1QCN],
            benchmarks=["BV4"],
            with_success=False,
        )
        assert report.measurements[0].degraded is True

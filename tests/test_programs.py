"""Every benchmark must produce its stated correct answer ideally."""

import pytest

from repro.ir import decompose_to_basis
from repro.programs import (
    bernstein_vazirani,
    cuccaro_adder,
    fredkin_benchmark,
    fredkin_sequence,
    hidden_shift,
    or_benchmark,
    peres_benchmark,
    qft_benchmark,
    standard_suite,
    benchmark_by_name,
    supremacy_circuit,
    toffoli_benchmark,
    toffoli_sequence,
)
from repro.sim import ideal_distribution


class TestStandardSuite:
    def test_twelve_benchmarks(self):
        suite = standard_suite()
        assert len(suite) == 12
        assert [b.name for b in suite] == [
            "BV4", "BV6", "BV8", "HS2", "HS4", "HS6",
            "Toffoli", "Fredkin", "Or", "Peres", "QFT", "Adder",
        ]

    @pytest.mark.parametrize(
        "bench", standard_suite(), ids=lambda b: b.name
    )
    def test_correct_answer_is_deterministic(self, bench):
        circuit, correct = bench.build()
        distribution = ideal_distribution(circuit)
        assert distribution[correct] == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize(
        "bench", standard_suite(), ids=lambda b: b.name
    )
    def test_decomposed_form_equivalent(self, bench):
        circuit, correct = bench.build()
        lowered = decompose_to_basis(circuit)
        assert ideal_distribution(lowered)[correct] == pytest.approx(
            1.0, abs=1e-9
        )

    def test_lookup_by_name(self):
        assert benchmark_by_name("qft").name == "QFT"
        with pytest.raises(KeyError, match="known"):
            benchmark_by_name("shor")

    def test_num_qubits(self):
        assert benchmark_by_name("BV8").num_qubits == 8
        assert benchmark_by_name("Toffoli").num_qubits == 3


class TestBernsteinVazirani:
    def test_custom_secret(self):
        circuit, correct = bernstein_vazirani(5, secret="0101")
        assert correct == "01011"
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    def test_cnot_count_tracks_secret_weight(self):
        circuit, _ = bernstein_vazirani(5, secret="0101")
        assert circuit.count_ops()["cx"] == 2

    def test_star_interaction_shape(self):
        from repro.ir.dag import interaction_pairs

        circuit, _ = bernstein_vazirani(4)
        pairs = interaction_pairs(circuit)
        assert all(3 in pair for pair in pairs)

    def test_bad_secret_rejected(self):
        with pytest.raises(ValueError, match="bit string"):
            bernstein_vazirani(4, secret="12")

    def test_too_small(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)


class TestHiddenShift:
    def test_custom_shift(self):
        circuit, correct = hidden_shift(4, shift="0110")
        assert correct == "0110"
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError, match="even"):
            hidden_shift(3)

    def test_disjoint_pair_interactions(self):
        from repro.ir.dag import interaction_pairs

        circuit, _ = hidden_shift(6)
        pairs = interaction_pairs(circuit)
        assert set(pairs) == {
            frozenset((0, 1)), frozenset((2, 3)), frozenset((4, 5))
        }


class TestThreeQubitGates:
    def test_toffoli(self):
        circuit, correct = toffoli_benchmark()
        assert correct == "111"

    def test_fredkin(self):
        circuit, correct = fredkin_benchmark()
        assert correct == "101"

    def test_or_truth(self):
        circuit, correct = or_benchmark()
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    def test_peres(self):
        circuit, correct = peres_benchmark()
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_toffoli_sequence_parity(self, k):
        circuit, correct = toffoli_sequence(k)
        assert correct == ("111" if k % 2 else "110")
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_fredkin_sequence_parity(self, k):
        circuit, correct = fredkin_sequence(k)
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    def test_sequence_rejects_zero(self):
        with pytest.raises(ValueError):
            toffoli_sequence(0)
        with pytest.raises(ValueError):
            fredkin_sequence(0)

    def test_sequence_length_grows(self):
        short, _ = toffoli_sequence(1)
        long, _ = toffoli_sequence(5)
        assert len(long) > len(short)


class TestAdder:
    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (1, 0, 0), (0, 1, 1),
                                         (1, 1, 0), (1, 1, 1)])
    def test_all_input_combinations(self, a, b, cin):
        circuit, correct = cuccaro_adder(a, b, cin)
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)
        total = a + b + cin
        assert correct == f"{cin}{a}{total % 2}{total // 2}"

    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            cuccaro_adder(2, 0, 0)


class TestQft:
    def test_output_all_zeros(self):
        circuit, correct = qft_benchmark(4)
        assert correct == "0000"
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    def test_all_to_all_interactions(self):
        from repro.ir.dag import interaction_pairs

        circuit, _ = qft_benchmark(4)
        assert len(interaction_pairs(circuit)) == 6

    def test_too_small(self):
        with pytest.raises(ValueError):
            qft_benchmark(1)


class TestSupremacy:
    def test_deterministic(self):
        a = supremacy_circuit(6, 8, seed=3)
        b = supremacy_circuit(6, 8, seed=3)
        assert [str(i) for i in a] == [str(i) for i in b]

    def test_seed_changes_circuit(self):
        a = supremacy_circuit(6, 8, seed=3)
        b = supremacy_circuit(6, 8, seed=4)
        assert [str(i) for i in a] != [str(i) for i in b]

    def test_gate_density(self):
        # 72 qubits at depth 128 should land near the paper's ~2000 2Q
        # gates.
        circuit = supremacy_circuit(72, 128, seed=0)
        assert 1500 <= circuit.num_two_qubit_gates() <= 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            supremacy_circuit(1, 8)
        with pytest.raises(ValueError):
            supremacy_circuit(4, 0)

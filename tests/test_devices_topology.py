"""Tests for coupling topologies."""

import pytest

from repro.devices import Topology


class TestBuilders:
    def test_line(self):
        topo = Topology.line(4)
        assert topo.num_edges() == 3
        assert topo.are_coupled(1, 2)
        assert not topo.are_coupled(0, 2)

    def test_ring(self):
        topo = Topology.ring(5)
        assert topo.num_edges() == 5
        assert topo.are_coupled(4, 0)

    def test_grid(self):
        topo = Topology.grid(2, 3)
        assert topo.num_qubits == 6
        # 2*(3-1) horizontal + 3 vertical = 7 edges.
        assert topo.num_edges() == 7
        assert topo.are_coupled(0, 3)
        assert not topo.are_coupled(0, 4)

    def test_full(self):
        topo = Topology.full(5)
        assert topo.is_fully_connected()
        assert topo.num_edges() == 10

    def test_star(self):
        topo = Topology.star(4)
        assert topo.degree(0) == 3
        assert topo.degree(1) == 1


class TestValidation:
    def test_edge_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Topology(2, [(0, 2)])

    def test_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(2, [(1, 1)])

    def test_empty_topology(self):
        with pytest.raises(ValueError):
            Topology(0, [])


class TestDirected:
    def test_directed_supports_only_given_direction(self):
        topo = Topology(2, [(0, 1)], directed=True)
        assert topo.supports_direction(0, 1)
        assert not topo.supports_direction(1, 0)
        assert topo.are_coupled(1, 0)  # coupling is symmetric

    def test_undirected_supports_both(self):
        topo = Topology(2, [(0, 1)])
        assert topo.supports_direction(0, 1)
        assert topo.supports_direction(1, 0)


class TestQueries:
    def test_distance(self):
        topo = Topology.line(5)
        assert topo.distance(0, 4) == 4
        assert topo.distance(2, 2) == 0

    def test_neighbors_sorted(self):
        topo = Topology.ring(4)
        assert topo.neighbors(0) == [1, 3]

    def test_describe_full(self):
        assert "fully connected" in Topology.full(3).describe()

    def test_describe_directed(self):
        topo = Topology(3, [(0, 1), (1, 2)], directed=True)
        assert "directed" in topo.describe()

    def test_connected(self):
        assert Topology.line(3).is_connected()
        assert not Topology(3, [(0, 1)]).is_connected()

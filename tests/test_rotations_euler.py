"""Tests for ZXZ / ZYZ Euler decompositions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.rotations import (
    Quaternion,
    quaternion_to_zxz,
    quaternion_to_zyz,
    zxz_to_quaternion,
    zyz_to_quaternion,
)

angles = st.floats(
    min_value=-4 * math.pi,
    max_value=4 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)
axes = st.tuples(
    st.floats(min_value=-1, max_value=1),
    st.floats(min_value=-1, max_value=1),
    st.floats(min_value=-1, max_value=1),
).filter(lambda v: math.sqrt(sum(c * c for c in v)) > 1e-3)
rotations = st.builds(
    lambda axis, theta: Quaternion.from_axis_angle(axis, theta), axes, angles
)


class TestZxz:
    def test_pure_x(self):
        angles_out = quaternion_to_zxz(Quaternion.rx(0.8))
        assert angles_out.beta == pytest.approx(0.8)
        # alpha and gamma only matter mod the Z structure; roundtrip:
        assert zxz_to_quaternion(angles_out).approx_equal(Quaternion.rx(0.8))

    def test_pure_z(self):
        angles_out = quaternion_to_zxz(Quaternion.rz(1.3))
        assert angles_out.beta == pytest.approx(0.0, abs=1e-9)
        assert angles_out.alpha + angles_out.gamma == pytest.approx(1.3)

    def test_identity(self):
        angles_out = quaternion_to_zxz(Quaternion.identity())
        assert angles_out.beta == pytest.approx(0.0, abs=1e-12)

    def test_hadamard(self):
        h = Quaternion.from_axis_angle((1, 0, 1), math.pi)
        assert zxz_to_quaternion(quaternion_to_zxz(h)).approx_equal(h)

    def test_beta_range(self):
        # beta is reported in [0, pi] (sin(beta/2) >= 0 by construction).
        q = Quaternion.rx(-0.9)
        angles_out = quaternion_to_zxz(q)
        assert 0 <= angles_out.beta <= math.pi + 1e-9
        assert zxz_to_quaternion(angles_out).approx_equal(q)

    @given(rotations)
    def test_roundtrip(self, q):
        assert zxz_to_quaternion(quaternion_to_zxz(q)).approx_equal(
            q, atol=1e-7
        )

    @given(angles, angles, angles)
    def test_forward_then_extract(self, alpha, beta, gamma):
        from repro.rotations.euler import ZXZAngles

        q = zxz_to_quaternion(ZXZAngles(alpha, beta, gamma))
        assert zxz_to_quaternion(quaternion_to_zxz(q)).approx_equal(
            q, atol=1e-7
        )


class TestZyz:
    def test_pure_y(self):
        angles_out = quaternion_to_zyz(Quaternion.ry(0.8))
        assert angles_out.beta == pytest.approx(0.8)

    def test_pure_z(self):
        angles_out = quaternion_to_zyz(Quaternion.rz(-0.4))
        assert angles_out.beta == pytest.approx(0.0, abs=1e-9)
        assert angles_out.alpha + angles_out.gamma == pytest.approx(-0.4)

    @given(rotations)
    def test_roundtrip(self, q):
        assert zyz_to_quaternion(quaternion_to_zyz(q)).approx_equal(
            q, atol=1e-7
        )

    @given(rotations)
    def test_zxz_and_zyz_agree(self, q):
        via_zxz = zxz_to_quaternion(quaternion_to_zxz(q))
        via_zyz = zyz_to_quaternion(quaternion_to_zyz(q))
        assert via_zxz.approx_equal(via_zyz, atol=1e-7)

"""Executable generation: emission, parsing, round trips."""

import math

import pytest

from repro.backends import (
    emit_openqasm,
    emit_quil,
    emit_umdti_asm,
    generate_code,
    parse_openqasm,
    parse_quil,
    parse_umdti_asm,
)
from repro.compiler import compile_circuit
from repro.contracts.errors import CodegenParseError
from repro.devices import ibmq5_tenerife, rigetti_agave, umd_trapped_ion
from repro.ir import Circuit
from repro.programs import bernstein_vazirani
from repro.sim import ideal_distribution


def ibm_circuit():
    circuit = Circuit(2)
    circuit.add("u2", (0,), (0.0, math.pi))
    circuit.add("u1", (1,), (math.pi / 4,))
    circuit.add("u3", (1,), (0.3, -0.7, 1.1))
    circuit.cx(0, 1)
    circuit.measure_all()
    return circuit


class TestOpenQasm:
    def test_emission_structure(self):
        text = emit_openqasm(ibm_circuit())
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[0] -> c[0];" in text

    def test_pi_formatting(self):
        text = emit_openqasm(ibm_circuit())
        assert "u2(0,pi)" in text
        assert "u1(pi/4)" in text

    def test_rejects_untranslated_gates(self):
        with pytest.raises(ValueError, match="not IBM software-visible"):
            emit_openqasm(Circuit(1).h(0))

    def test_roundtrip_preserves_distribution(self):
        circuit = ibm_circuit()
        parsed = parse_openqasm(emit_openqasm(circuit))
        assert ideal_distribution(parsed) == pytest.approx(
            ideal_distribution(circuit)
        )

    def test_parse_accepts_ir_gates(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[2];\ncreg c[2];\n"
            "h q[0];\nrx(-pi/2) q[1];\ncx q[0],q[1];\n"
        )
        parsed = parse_openqasm(text)
        assert [i.name for i in parsed] == ["h", "rx", "cx"]
        assert parsed[1].params[0] == pytest.approx(-math.pi / 2)

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            parse_openqasm("qreg q[1];\nfoo q[0];")

    def test_parse_requires_qreg(self):
        with pytest.raises(ValueError, match="qreg"):
            parse_openqasm("h q[0];")


class TestQuil:
    def rigetti_circuit(self):
        circuit = Circuit(2)
        circuit.add("rz", (0,), (math.pi / 2,))
        circuit.add("rx", (0,), (math.pi / 2,))
        circuit.cz(0, 1)
        circuit.measure_all()
        return circuit

    def test_emission_structure(self):
        text = emit_quil(self.rigetti_circuit())
        assert "DECLARE ro BIT[2]" in text
        assert "RZ(pi/2) 0" in text
        assert "CZ 0 1" in text
        assert "MEASURE 0 ro[0]" in text

    def test_rejects_untranslated(self):
        with pytest.raises(ValueError, match="not Rigetti"):
            emit_quil(Circuit(2).cx(0, 1))

    def test_roundtrip(self):
        circuit = self.rigetti_circuit()
        parsed = parse_quil(emit_quil(circuit))
        assert ideal_distribution(parsed) == pytest.approx(
            ideal_distribution(circuit)
        )

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            parse_quil("HADAMARD 0")


class TestUmdtiAsm:
    def umdti_circuit(self):
        circuit = Circuit(2)
        circuit.rxy(math.pi / 2, math.pi / 2, 0)
        circuit.add("rz", (0,), (-math.pi / 2,))
        circuit.xx(math.pi / 4, 0, 1)
        circuit.measure_all()
        return circuit

    def test_emission_structure(self):
        text = emit_umdti_asm(self.umdti_circuit())
        assert "RXY 0.500000 0.500000 Q0" in text
        assert "XX 0.250000 Q0 Q1" in text
        assert "MEAS Q0 -> C0" in text

    def test_rejects_untranslated(self):
        with pytest.raises(ValueError, match="not UMDTI"):
            emit_umdti_asm(Circuit(1).h(0))

    def test_roundtrip(self):
        circuit = self.umdti_circuit()
        parsed = parse_umdti_asm(emit_umdti_asm(circuit))
        assert ideal_distribution(parsed) == pytest.approx(
            ideal_distribution(circuit), abs=1e-6
        )

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            parse_umdti_asm("LASER Q0")


class TestDispatchRoundTrips:
    """Compiled executables must round-trip with identical semantics."""

    def test_ibm_compiled_roundtrip(self):
        circuit, correct = bernstein_vazirani(4)
        program = compile_circuit(circuit, ibmq5_tenerife())
        parsed = parse_openqasm(program.executable())
        assert ideal_distribution(parsed)[correct] == pytest.approx(1.0)

    def test_rigetti_compiled_roundtrip(self):
        circuit, correct = bernstein_vazirani(4)
        program = compile_circuit(circuit, rigetti_agave())
        parsed = parse_quil(program.executable())
        assert ideal_distribution(parsed)[correct] == pytest.approx(1.0)

    def test_umdti_compiled_roundtrip(self):
        circuit, correct = bernstein_vazirani(4)
        program = compile_circuit(circuit, umd_trapped_ion())
        parsed = parse_umdti_asm(program.executable())
        # Angles serialize at 6 decimals; allow tiny drift.
        assert ideal_distribution(parsed)[correct] == pytest.approx(
            1.0, abs=1e-6
        )

    def test_generate_code_dispatch(self):
        circuit, _ = bernstein_vazirani(4)
        ibm = compile_circuit(circuit, ibmq5_tenerife())
        assert generate_code(ibm.circuit, ibm.device).startswith("OPENQASM")


class TestStructuredParseErrors:
    """Malformed executables raise CodegenParseError with line context."""

    def test_openqasm_bad_line_number_and_text(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[2];\ncreg c[2];\n"
            "u1(pi/4) q[0];\n"
            "@@BOGUS 0 1;\n"
        )
        with pytest.raises(CodegenParseError) as excinfo:
            parse_openqasm(text)
        assert excinfo.value.line_number == 6
        assert "@@BOGUS" in str(excinfo.value)
        assert excinfo.value.code == "CODEGEN003"

    def test_openqasm_bad_angle(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\ncreg c[1];\n"
            "u1(banana) q[0];\n"
        )
        with pytest.raises(CodegenParseError) as excinfo:
            parse_openqasm(text)
        assert excinfo.value.line_number == 5

    def test_openqasm_missing_qreg(self):
        with pytest.raises(CodegenParseError, match="qreg"):
            parse_openqasm("OPENQASM 2.0;\nmeasure q[0] -> c[0];\n")

    def test_quil_bad_line(self):
        text = "DECLARE ro BIT[2]\nRX(pi/2) 0\nFROBNICATE 1\n"
        with pytest.raises(CodegenParseError) as excinfo:
            parse_quil(text)
        assert excinfo.value.line_number == 3
        assert "FROBNICATE" in str(excinfo.value)

    def test_quil_bad_angle(self):
        with pytest.raises(CodegenParseError) as excinfo:
            parse_quil("RX(tau) 0\n")
        assert excinfo.value.line_number == 1

    def test_umdti_bad_line(self):
        text = "RXY 0.500 0.000 Q0\nLASER Q0\n"
        with pytest.raises(CodegenParseError) as excinfo:
            parse_umdti_asm(text)
        assert excinfo.value.line_number == 2
        assert "LASER" in str(excinfo.value)

    def test_umdti_bad_operand(self):
        with pytest.raises(CodegenParseError, match="operand"):
            parse_umdti_asm("RZ wat Q0\n")

    def test_parse_errors_are_still_valueerrors(self):
        # Callers from before the structured hierarchy catch ValueError.
        for parser, text in (
            (parse_openqasm, "OPENQASM 2.0;\nqreg q[1];\nnope;\n"),
            (parse_quil, "nope\n"),
            (parse_umdti_asm, "nope\n"),
        ):
            with pytest.raises(ValueError):
                parser(text)

"""Unit and property tests for quaternion rotation algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rotations import Quaternion

angles = st.floats(
    min_value=-4 * math.pi,
    max_value=4 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)
axes = st.tuples(
    st.floats(min_value=-1, max_value=1),
    st.floats(min_value=-1, max_value=1),
    st.floats(min_value=-1, max_value=1),
).filter(lambda v: math.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2) > 1e-3)


def random_quaternions() -> st.SearchStrategy:
    return st.builds(
        lambda axis, theta: Quaternion.from_axis_angle(axis, theta),
        axes,
        angles,
    )


class TestConstruction:
    def test_identity(self):
        q = Quaternion.identity()
        assert q.is_identity()
        assert q.norm() == pytest.approx(1.0)

    def test_rx_matches_axis_angle(self):
        a = Quaternion.rx(0.7)
        b = Quaternion.from_axis_angle((1, 0, 0), 0.7)
        assert a.approx_equal(b)

    def test_ry_rz_axes(self):
        assert Quaternion.ry(0.5).rotation_axis() == pytest.approx((0, 1, 0))
        assert Quaternion.rz(0.5).rotation_axis() == pytest.approx((0, 0, 1))

    def test_rxy_phi_zero_is_rx(self):
        assert Quaternion.rxy(1.2, 0.0).approx_equal(Quaternion.rx(1.2))

    def test_rxy_phi_half_pi_is_ry(self):
        assert Quaternion.rxy(1.2, math.pi / 2).approx_equal(
            Quaternion.ry(1.2)
        )

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            Quaternion.from_axis_angle((0, 0, 0), 1.0)

    def test_axis_normalization(self):
        a = Quaternion.from_axis_angle((2, 0, 0), 0.9)
        assert a.approx_equal(Quaternion.rx(0.9))


class TestAlgebra:
    def test_rz_composition_adds_angles(self):
        composed = Quaternion.rz(0.3) * Quaternion.rz(0.4)
        assert composed.approx_equal(Quaternion.rz(0.7))

    def test_conjugate_inverts(self):
        q = Quaternion.from_axis_angle((1, 2, 3), 0.8)
        assert (q * q.conjugate()).is_identity()

    def test_x_then_z_is_not_z_then_x(self):
        xz = Quaternion.rz(math.pi / 2) * Quaternion.rx(math.pi / 2)
        zx = Quaternion.rx(math.pi / 2) * Quaternion.rz(math.pi / 2)
        assert not xz.approx_equal(zx)

    def test_rotate_vector_x_about_z(self):
        rotated = Quaternion.rz(math.pi / 2).rotate_vector((1, 0, 0))
        assert rotated == pytest.approx((0, 1, 0), abs=1e-12)

    def test_normalize_zero_rejected(self):
        with pytest.raises(ValueError):
            Quaternion(0, 0, 0, 0).normalized()


class TestQueries:
    def test_rotation_angle(self):
        assert Quaternion.rx(0.9).rotation_angle() == pytest.approx(0.9)

    def test_is_z_rotation(self):
        assert Quaternion.rz(1.1).is_z_rotation()
        assert not Quaternion.rx(1.1).is_z_rotation()
        assert Quaternion.identity().is_z_rotation()

    def test_canonical_sign(self):
        q = Quaternion(-0.5, 0.5, 0.5, 0.5)
        canonical = q.canonical()
        assert canonical.w > 0
        assert canonical.approx_equal(q)

    def test_minus_q_same_rotation(self):
        q = Quaternion.from_axis_angle((1, 1, 0), 1.0)
        minus = Quaternion(-q.w, -q.x, -q.y, -q.z)
        assert q.approx_equal(minus)


class TestProperties:
    @given(random_quaternions(), random_quaternions())
    def test_product_is_unit_norm(self, a, b):
        assert (a * b).norm() == pytest.approx(1.0, abs=1e-9)

    @given(random_quaternions(), random_quaternions(), random_quaternions())
    def test_associativity(self, a, b, c):
        left = (a * b) * c
        right = a * (b * c)
        assert left.approx_equal(right, atol=1e-7)

    @given(random_quaternions())
    def test_conjugate_is_inverse(self, q):
        assert (q * q.conjugate()).is_identity(atol=1e-7)

    @given(random_quaternions(), axes)
    def test_rotation_preserves_length(self, q, vec):
        rotated = q.rotate_vector(vec)
        assert np.linalg.norm(rotated) == pytest.approx(
            np.linalg.norm(vec), abs=1e-7
        )

    @given(random_quaternions(), random_quaternions(), axes)
    def test_composition_matches_sequential_rotation(self, a, b, vec):
        # b * a applies a first.
        sequential = b.rotate_vector(a.rotate_vector(vec))
        composed = (b * a).rotate_vector(vec)
        assert composed == pytest.approx(sequential, abs=1e-6)

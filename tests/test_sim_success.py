"""Tests for success-rate estimation."""

import pytest

from tests.helpers import make_device, make_noiseless_device
from repro.devices import Topology
from repro.ir import Circuit
from repro.sim import (
    estimated_success_probability,
    monte_carlo_success_rate,
)


def bell_circuit():
    return Circuit(2).x(0).cx(0, 1).measure_all()


class TestEsp:
    def test_noiseless_deterministic_circuit(self):
        device = make_noiseless_device(Topology.line(2))
        esp = estimated_success_probability(bell_circuit(), device, "11")
        assert esp == pytest.approx(1.0, abs=1e-3)

    def test_esp_formula(self):
        device = make_device(
            Topology.line(2),
            two_qubit_error=0.1,
            single_qubit_error=0.02,
            readout_error=0.05,
        )
        esp = estimated_success_probability(bell_circuit(), device, "11")
        # One x (0.02), one cx (0.1), two readouts (0.05 each).
        expected = (1 - 0.02) * (1 - 0.1) * (1 - 0.05) ** 2 * 1.0
        assert esp == pytest.approx(expected)

    def test_ideal_probability_factor(self):
        device = make_noiseless_device(Topology.line(1))
        circuit = Circuit(1).h(0).measure(0)
        esp = estimated_success_probability(circuit, device, "0")
        assert esp == pytest.approx(0.5, abs=1e-3)

    def test_wrong_answer_length_rejected(self):
        device = make_noiseless_device(Topology.line(2))
        with pytest.raises(ValueError, match="bits"):
            estimated_success_probability(bell_circuit(), device, "1")

    def test_no_measurement_rejected(self):
        device = make_noiseless_device(Topology.line(2))
        with pytest.raises(ValueError, match="no measurements"):
            estimated_success_probability(Circuit(2).h(0), device, "00")


class TestMonteCarlo:
    def test_bounds(self):
        device = make_device(Topology.line(2), two_qubit_error=0.2)
        estimate = monte_carlo_success_rate(
            bell_circuit(), device, "11", fault_samples=50
        )
        assert 0.0 <= estimate.success_rate <= 1.0
        assert estimate.ideal_rate == pytest.approx(1.0)

    def test_noiseless_gives_ideal(self):
        device = make_noiseless_device(Topology.line(2))
        estimate = monte_carlo_success_rate(
            bell_circuit(), device, "11", fault_samples=10
        )
        assert estimate.success_rate == pytest.approx(1.0, abs=1e-3)

    def test_mc_at_least_esp(self):
        # Faulty runs still succeed occasionally, so the Monte-Carlo
        # estimate should not fall meaningfully below the ESP.
        device = make_device(Topology.line(2), two_qubit_error=0.15)
        circuit = bell_circuit()
        estimate = monte_carlo_success_rate(
            circuit, device, "11", fault_samples=200
        )
        assert estimate.success_rate >= estimate.esp - 0.02

    def test_more_gates_lower_success(self):
        device = make_device(Topology.line(2), two_qubit_error=0.1)
        short = Circuit(2).x(0).cx(0, 1).measure_all()
        long = Circuit(2).x(0)
        for _ in range(9):
            long.cx(0, 1)
        long.measure_all()
        sr_short = monte_carlo_success_rate(
            short, device, "11", fault_samples=100
        ).success_rate
        sr_long = monte_carlo_success_rate(
            long, device, "11", fault_samples=100
        ).success_rate
        assert sr_long < sr_short

    def test_readout_error_reduces_success(self):
        clean = make_device(Topology.line(2), readout_error=1e-5,
                            two_qubit_error=1e-5, single_qubit_error=1e-5)
        noisy_ro = make_device(Topology.line(2), readout_error=0.2,
                               two_qubit_error=1e-5, single_qubit_error=1e-5)
        circuit = bell_circuit()
        sr_clean = monte_carlo_success_rate(
            circuit, clean, "11", fault_samples=10
        ).success_rate
        sr_noisy = monte_carlo_success_rate(
            circuit, noisy_ro, "11", fault_samples=10
        ).success_rate
        # Two readouts at 0.2 error -> ~0.64 success.
        assert sr_clean == pytest.approx(1.0, abs=1e-3)
        assert sr_noisy == pytest.approx(0.64, abs=0.02)

    def test_deterministic_given_seed(self):
        device = make_device(Topology.line(2), two_qubit_error=0.2)
        a = monte_carlo_success_rate(
            bell_circuit(), device, "11", fault_samples=30, seed=9
        )
        b = monte_carlo_success_rate(
            bell_circuit(), device, "11", fault_samples=30, seed=9
        )
        assert a.success_rate == b.success_rate

    def test_estimate_metadata(self):
        device = make_device(Topology.line(2), two_qubit_error=0.2)
        estimate = monte_carlo_success_rate(
            bell_circuit(), device, "11", fault_samples=25
        )
        assert estimate.fault_samples == 25
        assert 0 < estimate.no_fault_probability < 1
        assert estimate.esp <= estimate.no_fault_probability

"""Tests for the experiment harness (cheap experiments run fully)."""

import pytest

from repro.experiments import geomean, improvement_ratios
from repro.experiments.stats import summarize_improvement
from repro.experiments.tables import format_table
from repro.experiments import (
    fig1_devices,
    fig2_gatesets,
    fig3_calibration,
    fig5_ir,
    fig6_reliability,
    table1_configs,
)
from repro.experiments.runner import (
    by_compiler,
    compile_with,
    fits,
    measure,
)
from repro.compiler import OptimizationLevel
from repro.devices import ibmq5_tenerife, rigetti_agave
from repro.ir import Circuit
from repro.programs import benchmark_by_name


class TestStats:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_improvement_ratios_floor_zero_baselines(self):
        ratios = improvement_ratios([0.0, 0.5], [0.5, 0.5])
        assert ratios[0] == pytest.approx(500.0)
        assert ratios[1] == pytest.approx(1.0)

    def test_summarize(self):
        gm, mx = summarize_improvement([0.1, 0.2], [0.2, 0.2])
        assert mx == pytest.approx(2.0)
        assert gm == pytest.approx((2.0 * 1.0) ** 0.5)


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [(1, 2.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])


class TestCheapExperiments:
    def test_fig1(self):
        rows = fig1_devices.run()
        assert len(rows) == 7
        assert "IBM Q5 Tenerife" in fig1_devices.format_result(rows)

    def test_fig2(self):
        rows = fig2_gatesets.run()
        assert {r.vendor for r in rows} == {"ibm", "rigetti", "umdti"}
        assert "Pulses" in fig2_gatesets.format_result(rows)

    def test_fig3_spread_in_paper_band(self):
        result = fig3_calibration.run(days=26)
        assert 4.0 <= result.spread_factor <= 20.0
        assert result.average_error == pytest.approx(0.0795, rel=0.4)
        assert "9x" in fig3_calibration.format_result(result)

    def test_fig5(self):
        result = fig5_ir.run()
        assert result.op_counts["cx"] == 3
        assert result.correct == "1111"
        assert "BV4" in fig5_ir.format_result(result)

    def test_fig6_matches_paper(self):
        result = fig6_reliability.run()
        assert result.max_abs_error < 0.01
        assert result.swap_path_1_to_5 == [1, 5]
        assert "0.58" in fig6_reliability.format_result(result)

    def test_table1(self):
        rows = table1_configs.run()
        names = [r.name for r in rows]
        assert names[:4] == [
            "TriQ-N", "TriQ-1QOpt", "TriQ-1QOptC", "TriQ-1QOptCN"
        ]
        assert "Qiskit" in names and "Quil" in names


class TestRunner:
    def test_fits(self):
        assert fits(Circuit(4), ibmq5_tenerife())
        assert not fits(Circuit(6), ibmq5_tenerife())

    def test_compile_with_level(self):
        circuit, _ = benchmark_by_name("Toffoli").build()
        program = compile_with(
            circuit, ibmq5_tenerife(), OptimizationLevel.OPT_1Q
        )
        assert program.level is OptimizationLevel.OPT_1Q

    def test_compile_with_baseline_names(self):
        circuit, _ = benchmark_by_name("Toffoli").build()
        assert compile_with(circuit, ibmq5_tenerife(), "Qiskit").level == (
            "Qiskit"
        )
        assert compile_with(circuit, rigetti_agave(), "quil").level == "Quil"

    def test_compile_with_unknown(self):
        circuit, _ = benchmark_by_name("Toffoli").build()
        with pytest.raises(ValueError, match="unknown compiler"):
            compile_with(circuit, ibmq5_tenerife(), "cirq")

    def test_measure_without_success(self):
        result = measure(
            benchmark_by_name("HS2"),
            ibmq5_tenerife(),
            OptimizationLevel.OPT_1QCN,
            with_success=False,
        )
        assert result.success_rate is None
        assert result.two_qubit_gates >= 1

    def test_measure_with_success(self):
        result = measure(
            benchmark_by_name("HS2"),
            ibmq5_tenerife(),
            OptimizationLevel.OPT_1QCN,
            fault_samples=20,
        )
        assert 0.0 <= result.success_rate <= 1.0

    def test_by_compiler_grouping(self):
        result = measure(
            benchmark_by_name("HS2"),
            ibmq5_tenerife(),
            OptimizationLevel.OPT_1QCN,
            with_success=False,
        )
        grouped = by_compiler([result])
        assert list(grouped) == ["TriQ-1QOptCN"]

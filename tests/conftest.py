"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.devices import Device, Topology
from repro.devices.gatesets import VendorFamily

from tests.helpers import alarm_timeout, make_device


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden emitter files instead of comparing "
             "against them (tests/test_golden_backends.py)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    # Global per-test wall-clock budget; see tests/helpers.alarm_timeout.
    with alarm_timeout():
        return (yield)


@pytest.fixture
def line4_ibm() -> Device:
    """A 4-qubit IBM-style line device."""
    return make_device(Topology.line(4), VendorFamily.IBM)


@pytest.fixture
def full5_umdti() -> Device:
    """A 5-qubit fully connected UMD-style device."""
    return make_device(
        Topology.full(5),
        VendorFamily.UMDTI,
        two_qubit_error=0.01,
        readout_error=0.006,
    )

"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.devices import Device, Topology
from repro.devices.gatesets import VendorFamily

from tests.helpers import make_device

#: Global per-test wall-clock budget.  A hung test (deadlocked pool,
#: stuck queue) fails loudly instead of wedging CI; override with the
#: REPRO_TEST_TIMEOUT_S environment variable, 0 disables.
_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "180"))


def _alarm_usable() -> bool:
    return (
        _TEST_TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if not _alarm_usable():
        return (yield)

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_TEST_TIMEOUT_S:.0f}s global timeout "
            "(set REPRO_TEST_TIMEOUT_S to adjust, 0 to disable)"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_S)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def line4_ibm() -> Device:
    """A 4-qubit IBM-style line device."""
    return make_device(Topology.line(4), VendorFamily.IBM)


@pytest.fixture
def full5_umdti() -> Device:
    """A 5-qubit fully connected UMD-style device."""
    return make_device(
        Topology.full(5),
        VendorFamily.UMDTI,
        two_qubit_error=0.01,
        readout_error=0.006,
    )

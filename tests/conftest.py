"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.devices import Device, Topology
from repro.devices.gatesets import VendorFamily

from tests.helpers import make_device


@pytest.fixture
def line4_ibm() -> Device:
    """A 4-qubit IBM-style line device."""
    return make_device(Topology.line(4), VendorFamily.IBM)


@pytest.fixture
def full5_umdti() -> Device:
    """A 5-qubit fully connected UMD-style device."""
    return make_device(
        Topology.full(5),
        VendorFamily.UMDTI,
        two_qubit_error=0.01,
        readout_error=0.006,
    )

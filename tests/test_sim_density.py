"""Density-matrix simulation, and its agreement with the MC estimator."""

import numpy as np
import pytest

from tests.helpers import make_device
from repro.devices import Topology, umd_trapped_ion
from repro.ir import Circuit
from repro.programs import toffoli_benchmark
from repro.sim import monte_carlo_success_rate, simulate_statevector
from repro.sim.density import (
    MAX_DENSITY_QUBITS,
    apply_channel,
    density_distribution,
    depolarizing_kraus,
    exact_success_probability,
    simulate_density,
    zero_density,
)
from repro.sim.statevector import measurement_wiring


def is_valid_density(rho: np.ndarray) -> bool:
    if not np.allclose(rho, rho.conj().T, atol=1e-10):
        return False
    if not np.isclose(np.trace(rho).real, 1.0, atol=1e-10):
        return False
    eigenvalues = np.linalg.eigvalsh(rho)
    return bool((eigenvalues > -1e-10).all())


class TestDensityBasics:
    def test_zero_density(self):
        rho = zero_density(2)
        assert rho[0, 0] == 1.0
        assert is_valid_density(rho)

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limit"):
            zero_density(MAX_DENSITY_QUBITS + 1)

    def test_noiseless_matches_statevector(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        rho = simulate_density(circuit)
        psi = simulate_statevector(circuit)
        np.testing.assert_allclose(rho, np.outer(psi, psi.conj()), atol=1e-10)

    def test_noisy_evolution_stays_physical(self):
        device = make_device(Topology.line(3), two_qubit_error=0.1)
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        rho = simulate_density(circuit, device)
        assert is_valid_density(rho)

    def test_noise_reduces_purity(self):
        device = make_device(Topology.line(2), two_qubit_error=0.2)
        circuit = Circuit(2).h(0).cx(0, 1)
        clean = simulate_density(circuit)
        noisy = simulate_density(circuit, device)
        def purity(r):
            return np.trace(r @ r).real

        assert purity(noisy) < purity(clean)


class TestKraus:
    def test_trace_preserving(self):
        for n in (1, 2):
            kraus = depolarizing_kraus(0.15, n)
            total = sum(op.conj().T @ op for op in kraus)
            np.testing.assert_allclose(total, np.eye(2**n), atol=1e-12)

    def test_operator_counts(self):
        assert len(depolarizing_kraus(0.1, 1)) == 4
        assert len(depolarizing_kraus(0.1, 2)) == 16

    def test_full_depolarizing_mixes(self):
        # Applying the channel with high error pushes toward the
        # maximally mixed state on the affected qubit.
        rho = zero_density(1)
        kraus = depolarizing_kraus(0.74, 1)
        out = apply_channel(rho, kraus, (0,), 1)
        # p(flip to |1>) = 0.74 * (2/3 of non-identity Paulis flip).
        assert out[1, 1].real == pytest.approx(0.74 * 2 / 3, abs=1e-10)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            depolarizing_kraus(1.0, 1)


class TestExactSuccess:
    def test_matches_readout_only_analysis(self):
        device = make_device(
            Topology.line(2),
            two_qubit_error=1e-5,
            single_qubit_error=1e-5,
            readout_error=0.2,
        )
        circuit = Circuit(2).x(0).cx(0, 1).measure_all()
        exact = exact_success_probability(circuit, device, "11")
        assert exact == pytest.approx(0.8 * 0.8, abs=1e-3)

    def test_monte_carlo_agrees_with_exact(self):
        # The core validation: sampling and exact evolution implement
        # the same channel.
        device = make_device(
            Topology.line(3),
            two_qubit_error=0.08,
            single_qubit_error=0.01,
            readout_error=0.04,
        )
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).x(0).measure_all()
        exact = exact_success_probability(circuit, device, "111")
        estimate = monte_carlo_success_rate(
            circuit, device, "111", fault_samples=3000, seed=7
        )
        assert estimate.success_rate == pytest.approx(exact, abs=0.02)

    def test_monte_carlo_agrees_on_compiled_benchmark(self):
        from repro.compiler import compile_circuit

        device = umd_trapped_ion()
        circuit, correct = toffoli_benchmark()
        program = compile_circuit(circuit, device)
        exact = exact_success_probability(program.circuit, device, correct)
        estimate = monte_carlo_success_rate(
            program.circuit, device, correct, fault_samples=2000, seed=3
        )
        assert estimate.success_rate == pytest.approx(exact, abs=0.02)

    def test_distribution_marginalization(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure(0)
        rho = simulate_density(circuit)
        dist = density_distribution(
            rho, measurement_wiring(circuit), 2
        )
        assert dist == pytest.approx({"0": 0.5, "1": 0.5})

    def test_requires_measurements(self):
        device = make_device(Topology.line(2))
        with pytest.raises(ValueError, match="no measurements"):
            exact_success_probability(Circuit(2).h(0), device, "00")

"""Unit tests for the shared resilient HTTP client.

Everything here runs against an injected fake transport, clock, and
sleep, so retry schedules, circuit-breaker transitions, Retry-After
honoring, and deadline budgets are asserted deterministically — no
sockets, no real sleeping.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.faults import RetryPolicy
from repro.service.client import (
    CircuitBreaker,
    CircuitOpen,
    DeadlineExhausted,
    ResilientClient,
    TransportError,
)

POLICY = RetryPolicy(
    retries=3, backoff_s=0.1, backoff_factor=2.0,
    max_backoff_s=2.0, jitter=0.25,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeTransport:
    """Scripted responses: each entry is an exception or a response."""

    def __init__(self, script, clock=None, cost_s=0.0):
        self.script = list(script)
        self.calls = []
        self.clock = clock
        self.cost_s = cost_s

    def __call__(self, url, data, headers, timeout_s):
        self.calls.append(
            {"url": url, "data": data, "timeout_s": timeout_s}
        )
        if self.clock is not None and self.cost_s:
            self.clock.advance(self.cost_s)
        action = self.script.pop(0)
        if isinstance(action, Exception):
            raise action
        return action


def ok(payload, status=200, headers=None):
    return status, dict(headers or {}), json.dumps(payload).encode()


def make_client(script, clock=None, cost_s=0.0, **kwargs):
    clock = clock or FakeClock()
    sleeps = []

    def sleep(seconds):
        sleeps.append(seconds)
        clock.advance(seconds)

    transport = FakeTransport(script, clock=clock, cost_s=cost_s)
    client = ResilientClient(
        policy=kwargs.pop("policy", POLICY),
        clock=clock,
        sleep=sleep,
        transport=transport,
        **kwargs,
    )
    return client, transport, sleeps, clock


class TestRetries:
    def test_success_first_try_no_sleep(self):
        client, transport, sleeps, _ = make_client([ok({"x": 1})])
        assert client.request("http://c:1", "/v1/lease") == {"x": 1}
        assert len(transport.calls) == 1 and sleeps == []

    def test_transient_failure_retried_to_success(self):
        client, transport, sleeps, _ = make_client(
            [TransportError("blip"), TransportError("blip"), ok({"x": 2})]
        )
        assert client.request("http://c:1", "/v1/lease") == {"x": 2}
        assert len(transport.calls) == 3 and len(sleeps) == 2

    def test_budget_exhausted_raises_last_error(self):
        client, transport, sleeps, _ = make_client(
            [TransportError(f"blip {i}") for i in range(4)]
        )
        with pytest.raises(TransportError, match="blip 3"):
            client.request("http://c:1", "/v1/lease")
        assert len(transport.calls) == 4  # 1 + 3 retries
        assert len(sleeps) == 3

    def test_backoff_schedule_is_deterministic_hash_jitter(self):
        """Sleeps must be exactly RetryPolicy.delay(attempt, token)."""
        client, _, sleeps, _ = make_client(
            [TransportError("x")] * 3 + [ok({})]
        )
        client.request("http://c:1", "/v1/lease")
        token = "http://c:1/v1/lease"
        assert sleeps == [
            POLICY.delay(1, token=token),
            POLICY.delay(2, token=token),
            POLICY.delay(3, token=token),
        ]
        # And a second identical client sleeps identically (no RNG).
        client2, _, sleeps2, _ = make_client(
            [TransportError("x")] * 3 + [ok({})]
        )
        client2.request("http://c:1", "/v1/lease")
        assert sleeps2 == sleeps

    def test_retries_zero_means_single_attempt(self):
        client, transport, sleeps, _ = make_client(
            [TransportError("down"), ok({})]
        )
        with pytest.raises(TransportError):
            client.request("http://c:1", "/v1/heartbeat", retries=0)
        assert len(transport.calls) == 1 and sleeps == []

    def test_json_error_body_is_returned_not_raised(self):
        """Protocol semantics: outcomes live in the payload."""
        client, _, _, _ = make_client(
            [ok({"error": "no such job"}, status=404)]
        )
        assert client.request("http://c:1", "/v1/jobs/nope") == {
            "error": "no such job"
        }

    def test_non_json_body_is_a_transport_failure(self):
        client, transport, _, _ = make_client(
            [(200, {}, b"<html>proxy error</html>")] * 4
        )
        with pytest.raises(TransportError, match="JSON"):
            client.request("http://c:1", "/v1/lease")
        assert len(transport.calls) == 4


class TestRetryAfter:
    def test_429_honors_retry_after_header(self):
        client, _, sleeps, _ = make_client(
            [ok({"error": "slow down"}, 429, {"retry-after": "7"}), ok({})]
        )
        assert client.request("http://c:1", "/v1/compile") == {}
        assert sleeps == [7.0]

    def test_503_honors_retry_after_header(self):
        client, _, sleeps, _ = make_client(
            [ok({"error": "draining"}, 503, {"retry-after": "2"}), ok({})]
        )
        client.request("http://c:1", "/v1/compile")
        assert sleeps == [2.0]

    def test_retryable_status_without_header_uses_backoff(self):
        client, _, sleeps, _ = make_client([ok({}, 503), ok({})])
        client.request("http://c:1", "/v1/compile")
        assert sleeps == [
            POLICY.delay(1, token="http://c:1/v1/compile")
        ]

    def test_backpressure_does_not_trip_the_breaker(self):
        client, _, _, _ = make_client(
            [ok({}, 429, {"retry-after": "0"})] * 3 + [ok({})],
            failure_threshold=2,
        )
        client.request("http://c:1", "/v1/compile")
        assert client.breaker("http://c:1", "/v1/compile").state == "closed"


class TestDeadlines:
    def test_deadline_caps_per_attempt_timeout(self):
        client, transport, _, _ = make_client([ok({})])
        client.request(
            "http://c:1", "/v1/lease", timeout_s=30.0, deadline_s=5.0
        )
        assert transport.calls[0]["timeout_s"] == pytest.approx(5.0)

    def test_deadline_stops_retry_that_would_overrun(self):
        clock = FakeClock()
        client, transport, _, _ = make_client(
            [TransportError("down")] * 4, clock=clock, cost_s=1.0
        )
        with pytest.raises(DeadlineExhausted, match="overrun"):
            client.request("http://c:1", "/v1/lease", deadline_s=1.05)
        assert len(transport.calls) == 1  # no budget for attempt 2

    def test_budget_threads_through_retries_not_reset(self):
        """Each attempt sees deadline minus time already burned."""
        clock = FakeClock()
        client, transport, _, _ = make_client(
            [TransportError("down"), ok({})], clock=clock, cost_s=2.0
        )
        client.request(
            "http://c:1", "/v1/lease", timeout_s=30.0, deadline_s=10.0
        )
        # Attempt 1 saw the full 10s budget (clamped from 30), burned
        # 2s in transport plus the backoff sleep; attempt 2's timeout
        # is what was left, never 10 again.
        assert transport.calls[0]["timeout_s"] == pytest.approx(10.0)
        assert transport.calls[1]["timeout_s"] < 8.0 + 1e-9


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        client, transport, _, clock = make_client(
            [TransportError("down")] * 10,
            failure_threshold=3, reset_after_s=5.0,
        )
        with pytest.raises(TransportError):
            client.request("http://c:1", "/v1/lease")  # 4 failures
        assert client.breaker("http://c:1", "/v1/lease").state == "open"
        calls_before = len(transport.calls)
        with pytest.raises(CircuitOpen):
            client.request("http://c:1", "/v1/lease")
        assert len(transport.calls) == calls_before  # network untouched

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        # Only 3 transport entries fail: the breaker opens on the 3rd,
        # so attempt 4 raises CircuitOpen without touching the network.
        client, transport, _, _ = make_client(
            [TransportError("down")] * 3 + [ok({"back": True}), ok({})],
            clock=clock, failure_threshold=3, reset_after_s=5.0,
        )
        with pytest.raises(TransportError):
            client.request("http://c:1", "/v1/lease")
        clock.advance(5.1)  # cooldown elapsed -> half-open probe
        assert client.request("http://c:1", "/v1/lease") == {"back": True}
        breaker = client.breaker("http://c:1", "/v1/lease")
        assert breaker.state == "closed"
        assert client.request("http://c:1", "/v1/lease") == {}

    def test_failed_probe_reopens_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after_s=5.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # the half-open probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock.advance(4.0)
        assert not breaker.allow()  # full cooldown restarted
        clock.advance(1.2)
        assert breaker.allow()

    def test_breakers_are_per_endpoint(self):
        client, _, _, _ = make_client(
            [TransportError("down")] * 4 + [ok({})],
            failure_threshold=3,
        )
        with pytest.raises(TransportError):
            client.request("http://c:1", "/v1/lease")
        # A different path on the same host has its own closed circuit.
        assert client.request("http://c:1", "/healthz") == {}


class TestRealTransport:
    """The default urllib transport against a real in-process daemon."""

    def test_round_trip_and_json_error_bodies(self, tmp_path):
        from repro.cache import activate_cache

        from tests.test_service import ServiceHarness

        harness = ServiceHarness(
            cache_dir=tmp_path / "cache", wal_enabled=False
        )
        base = f"http://127.0.0.1:{harness.service.port}"
        try:
            client = ResilientClient()
            # GET (no payload) success path.
            health = client.request(base, "/healthz")
            assert health["status"] == "ok"
            # POST with a payload.
            result = client.request(
                base, "/v1/compile",
                payload={"benchmark": "HS2", "device": "tenerife"},
            )
            assert result["job"]["status"] == "done"
            # An HTTP error status with a JSON body comes back as the
            # body (the daemons put outcomes in payloads, not statuses).
            missing = client.request(base, "/v1/jobs/job-999999")
            assert "error" in missing
        finally:
            harness.stop()
            activate_cache(None)

    def test_connection_refused_is_transport_error(self):
        client = ResilientClient(
            policy=RetryPolicy(retries=0, backoff_s=0.01)
        )
        with pytest.raises(TransportError):
            # Port 1 is never listening; refused instantly.
            client.request("http://127.0.0.1:1", "/healthz",
                           timeout_s=2.0, retries=0)


class TestProtocolRewiring:
    def test_call_retries_then_maps_to_coordinator_unreachable(self):
        from repro.experiments.distributed.protocol import (
            CoordinatorUnreachable,
            call,
        )

        client, transport, _, _ = make_client(
            [TransportError("conn refused")] * 4
        )
        with pytest.raises(CoordinatorUnreachable, match="/v1/lease"):
            call("http://c:1", "/v1/lease", {"worker": "w"}, client=client)
        assert len(transport.calls) == 4  # bounded retry happened

    def test_call_survives_one_blip(self):
        """The satellite contract: one blip no longer kills a worker."""
        from repro.experiments.distributed.protocol import call

        client, _, _, _ = make_client(
            [TransportError("one blip"), ok({"task": None, "done": True})]
        )
        lease = call("http://c:1", "/v1/lease", {"worker": "w"},
                     client=client)
        assert lease == {"task": None, "done": True}

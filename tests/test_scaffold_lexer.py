"""Tests for the Scaffold tokenizer."""

import pytest

from repro.scaffold import ScaffoldSyntaxError, tokenize


class TestTokenize:
    def test_simple_statement(self):
        tokens = tokenize("H(q[0]);")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "IDENT", "PUNCT", "IDENT", "PUNCT", "NUMBER", "PUNCT",
            "PUNCT", "PUNCT", "EOF",
        ]

    def test_keywords_recognized(self):
        tokens = tokenize("module for int qbit const")
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_identifier_not_keyword(self):
        tokens = tokenize("modules fortune")
        assert all(t.kind == "IDENT" for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2.5e-2")
        values = [t.value for t in tokens[:-1]]
        assert values[0] == "42"
        assert values[1] == "3.14"

    def test_line_comment_skipped(self):
        tokens = tokenize("H(q); // apply hadamard\nX(q);")
        names = [t.value for t in tokens if t.kind == "IDENT"]
        assert names == ["H", "q", "X", "q"]

    def test_block_comment_skipped(self):
        tokens = tokenize("H(q); /* multi\nline */ X(q);")
        names = [t.value for t in tokens if t.kind == "IDENT"]
        assert names == ["H", "q", "X", "q"]

    def test_line_numbers_track_newlines(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("  abc")
        assert tokens[0].column == 3

    def test_two_char_operators(self):
        tokens = tokenize("i++ j <= k == l")
        ops = [t.value for t in tokens if t.kind == "OP"]
        assert ops == ["++", "<=", "=="]

    def test_bad_character(self):
        with pytest.raises(ScaffoldSyntaxError, match="unexpected character"):
            tokenize("H(q) @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"

"""Property tests for the compile pipeline over seeded random circuits.

Three invariants that must hold for *any* input, checked on a spread
of reproducible random programs (``repro.contracts.fuzz.random_circuit``
with fixed seeds — failures replay exactly):

* **Determinism** — compiling the same circuit twice, with fresh
  compiler instances, emits byte-identical executables.
* **2Q monotonicity** — routing can only add two-qubit gates (SWAP
  insertion), never drop them: the compiled 2Q count is at least the
  decomposed source's.
* **Tracer transparency** — tracing records a well-formed span tree
  (proper nesting, non-negative durations) and changes nothing about
  the compiled output.
"""

from __future__ import annotations

import random

import pytest

from repro.compiler import OptimizationLevel, TriQCompiler
from repro.contracts.fuzz import random_circuit
from repro.devices import device_by_name
from repro.ir.decompose import decompose_to_basis
from repro.obs.tracer import Tracer, tracer_context

SEEDS = [0, 1, 2, 7, 13, 42]
LEVELS = [OptimizationLevel.N, OptimizationLevel.OPT_1QCN]


def _case(seed: int):
    """A reproducible (circuit, device) pair sized for fast solves."""
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    circuit = random_circuit(
        rng, num_qubits, rng.randint(4, 12), name=f"prop{seed}"
    )
    device = device_by_name(rng.choice(["tenerife", "agave", "umd"]))
    if device.num_qubits < num_qubits:
        device = device_by_name("tenerife")
    return circuit, device


def _compile(circuit, device, level):
    compiler = TriQCompiler(device, level=level, time_limit_s=None)
    return compiler.compile(circuit)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("level", LEVELS, ids=lambda lv: lv.value)
def test_compile_is_deterministic(seed, level):
    circuit, device = _case(seed)
    first = _compile(circuit, device, level)
    second = _compile(circuit, device, level)
    assert first.executable() == second.executable()
    assert first.num_swaps == second.num_swaps
    assert first.initial_mapping.placement == second.initial_mapping.placement


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("level", LEVELS, ids=lambda lv: lv.value)
def test_two_qubit_count_is_monotone(seed, level):
    circuit, device = _case(seed)
    source_2q = decompose_to_basis(circuit).num_two_qubit_gates()
    compiled = _compile(circuit, device, level)
    assert compiled.two_qubit_gate_count() >= source_2q
    # ... and the excess is exactly what the swaps account for: each
    # inserted SWAP lowers to a non-negative number of extra 2Q gates.
    if compiled.num_swaps == 0:
        assert compiled.two_qubit_gate_count() == source_2q


@pytest.mark.parametrize("seed", SEEDS)
def test_tracing_records_sane_spans_and_changes_nothing(seed):
    circuit, device = _case(seed)
    level = OptimizationLevel.OPT_1QCN
    plain = _compile(circuit, device, level).executable()

    tracer = Tracer()
    with tracer_context(tracer):
        traced = _compile(circuit, device, level).executable()
    assert traced == plain

    spans = list(tracer.walk())
    assert spans, "tracing a compile recorded no spans"
    for span in spans:
        assert span.end_s is not None, f"span {span.name!r} left open"
        assert span.duration_s >= 0.0
        for child in span.children:
            assert span.start_s <= child.start_s
            assert child.end_s <= span.end_s
    # compile() opens the "compile" root; executable() adds a sibling
    # "codegen" root for the emitter.
    roots = [s.name for s in tracer.roots]
    assert roots[0] == "compile"
    assert set(roots) <= {"compile", "codegen"}

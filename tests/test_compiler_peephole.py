"""Tests for the peephole cancellation pass."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import assert_equal_up_to_phase
from repro.compiler.peephole import cancel_adjacent_gates
from repro.ir import Circuit
from repro.sim import circuit_unitary


class TestCancellation:
    def test_double_cx_cancels(self):
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_reversed_cx_does_not_cancel(self):
        circuit = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_gates(circuit)) == 2

    def test_double_h_cancels(self):
        circuit = Circuit(1).h(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_intervening_gate_blocks(self):
        circuit = Circuit(2).cx(0, 1).h(0).cx(0, 1)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_disjoint_gate_does_not_block(self):
        circuit = Circuit(3).cx(0, 1).h(2).cx(0, 1)
        out = cancel_adjacent_gates(circuit)
        assert [i.name for i in out] == ["h"]

    def test_barrier_blocks(self):
        circuit = Circuit(1).h(0)
        circuit.barrier()
        circuit.h(0)
        out = cancel_adjacent_gates(circuit)
        assert out.count_ops()["h"] == 2

    def test_cascade_collapses(self):
        # h x x h -> h h -> nothing.
        circuit = Circuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_rotations_merge(self):
        circuit = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        out = cancel_adjacent_gates(circuit)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_rotations_cancel_to_identity(self):
        circuit = Circuit(1).rx(0.9, 0).rx(-0.9, 0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_full_turn_cancels(self):
        circuit = Circuit(1).rz(math.pi, 0).rz(math.pi, 0)
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_partial_overlap_blocks(self):
        # cx(0,1) ... cx(1,2): sharing one qubit must block.
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_measurements_untouched(self):
        circuit = Circuit(1).h(0).h(0).measure(0)
        out = cancel_adjacent_gates(circuit)
        assert [i.name for i in out] == ["measure"]


class TestSemantics:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_circuits_preserved(self, seed):
        rng = np.random.default_rng(seed)
        circuit = Circuit(3)
        gates = ["h", "x", "z", "cx", "cz", "rz"]
        for _ in range(14):
            name = gates[rng.integers(len(gates))]
            if name in ("cx", "cz"):
                a, b = rng.choice(3, size=2, replace=False)
                circuit.add(name, (int(a), int(b)))
            elif name == "rz":
                circuit.rz(float(rng.uniform(-3, 3)), int(rng.integers(3)))
            else:
                circuit.add(name, (int(rng.integers(3)),))
        out = cancel_adjacent_gates(circuit)
        assert len(out) <= len(circuit)
        if len(out) == 0:
            expected = circuit_unitary(circuit)
            ratio = expected[0, 0]
            np.testing.assert_allclose(
                expected, ratio * np.eye(8), atol=1e-8
            )
        else:
            assert_equal_up_to_phase(
                circuit_unitary(out), circuit_unitary(circuit), atol=1e-8
            )

"""Property-based tests: routing invariants on random circuits/devices.

These encode the contracts every router must satisfy:

* all 2Q gates in the output act on hardware-coupled pairs,
* the classical output distribution is exactly preserved,
* measurement cbits stay in program-qubit order,
* the final placement is a valid injection.
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import make_device
from repro.baselines.router import greedy_route
from repro.compiler.mapping import default_mapping
from repro.compiler.reliability import compute_reliability
from repro.compiler.routing import route_circuit
from repro.devices import Topology
from repro.ir import Circuit, decompose_to_basis
from repro.sim import ideal_distribution


def topologies():
    return st.sampled_from([
        Topology.line(5),
        Topology.ring(6),
        Topology.grid(2, 3),
        Topology.star(5),
        Topology.full(4),
    ])


@st.composite
def circuits(draw, max_qubits: int = 4, max_gates: int = 14):
    num_qubits = draw(st.integers(2, max_qubits))
    circuit = Circuit(num_qubits, name="random")
    num_gates = draw(st.integers(1, max_gates))
    for _ in range(num_gates):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            circuit.h(draw(st.integers(0, num_qubits - 1)))
        elif kind == 1:
            circuit.rz(
                draw(st.floats(-3, 3, allow_nan=False)),
                draw(st.integers(0, num_qubits - 1)),
            )
        elif kind == 2:
            circuit.x(draw(st.integers(0, num_qubits - 1)))
        else:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 1))
            if a != b:
                circuit.cx(a, b)
    circuit.measure_all()
    return circuit


@settings(max_examples=40, deadline=None)
@given(topologies(), circuits())
def test_triq_router_invariants(topology, circuit):
    if circuit.num_qubits > topology.num_qubits:
        return
    device = make_device(topology)
    decomposed = decompose_to_basis(circuit)
    mapping = default_mapping(decomposed, device)
    reliability = compute_reliability(device)
    routed = route_circuit(decomposed, device, mapping, reliability)

    for inst in routed.circuit:
        if inst.is_unitary and inst.num_qubits == 2:
            assert device.topology.are_coupled(*inst.qubits)

    placement = routed.final_placement
    assert len(set(placement)) == len(placement)

    cbits = sorted(
        inst.cbits[0] for inst in routed.circuit if inst.is_measurement
    )
    assert cbits == list(range(circuit.num_qubits))

    assert ideal_distribution(routed.circuit) == pytest.approx(
        ideal_distribution(circuit), abs=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(topologies(), circuits(), st.integers(0, 3))
def test_baseline_router_invariants(topology, circuit, seed):
    if circuit.num_qubits > topology.num_qubits:
        return
    device = make_device(topology)
    decomposed = decompose_to_basis(circuit)
    mapping = default_mapping(decomposed, device)
    routed = greedy_route(decomposed, device, mapping, seed=seed)

    for inst in routed.circuit:
        if inst.is_unitary and inst.num_qubits == 2:
            assert device.topology.are_coupled(*inst.qubits)
    assert ideal_distribution(routed.circuit) == pytest.approx(
        ideal_distribution(circuit), abs=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(circuits(max_qubits=4))
def test_full_pipeline_preserves_distribution(circuit):
    from repro.compiler import OptimizationLevel, compile_circuit

    device = make_device(Topology.grid(2, 3))
    program = compile_circuit(
        circuit, device, level=OptimizationLevel.OPT_1QCN
    )
    assert ideal_distribution(program.circuit) == pytest.approx(
        ideal_distribution(circuit), abs=1e-7
    )

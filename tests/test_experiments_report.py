"""Smoke test for the consolidated report generator (structural mode)."""

import pytest

from repro.experiments.report import generate_report, main


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def fast_report(self):
        return generate_report(include_success=False,
                               scaling_sizes=[(2, 3), (2, 4)])

    def test_all_structural_sections_present(self, fast_report):
        for heading in (
            "Figure 1", "Figure 2", "Figure 3", "Figure 5", "Figure 6",
            "Table 1", "Figure 7", "Figure 8", "Section 6.5", "Section 7",
        ):
            assert heading in fast_report, heading

    def test_success_sections_skipped_in_fast_mode(self, fast_report):
        assert "Figure 12" not in fast_report
        assert "Section 8" not in fast_report

    def test_paper_references_included(self, fast_report):
        assert "**Paper:**" in fast_report
        assert "geomean" in fast_report

    def test_progress_callback(self):
        seen = []
        generate_report(
            include_success=False,
            scaling_sizes=[(2, 3)],
            progress=seen.append,
        )
        assert "Figure 6" in seen

    def test_cli_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["--fast", "-o", str(target)]) == 0
        assert "Figure 1" in target.read_text()

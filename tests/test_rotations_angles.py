"""The shared angle canonicalization helper."""

import math

import pytest

from repro.rotations import normalize_angle


class TestNormalizeAngle:
    def test_identity_on_canonical_range(self):
        for theta in (-math.pi + 1e-9, -1.0, 0.0, 1.0, math.pi):
            assert normalize_angle(theta) == pytest.approx(theta)

    def test_pi_maps_to_pi(self):
        # The canonical branch is (-pi, pi]: +pi stays, -pi flips.
        assert normalize_angle(math.pi) == pytest.approx(math.pi)
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)

    def test_wraps_multiples(self):
        assert normalize_angle(2 * math.pi) == 0.0
        assert normalize_angle(-2 * math.pi) == 0.0
        assert normalize_angle(5 * math.pi) == pytest.approx(math.pi)
        assert normalize_angle(2 * math.pi + 0.25) == pytest.approx(0.25)
        assert normalize_angle(-2 * math.pi - 0.25) == pytest.approx(-0.25)

    def test_just_below_two_pi(self):
        theta = 2 * math.pi - 1e-9
        assert normalize_angle(theta) == pytest.approx(-1e-9)

    def test_no_negative_zero(self):
        result = normalize_angle(-2 * math.pi)
        assert result == 0.0 and math.copysign(1.0, result) == 1.0

    def test_large_angles(self):
        # 1001*math.pi carries accumulated float error, so the result
        # may land an epsilon on either side of the +/-pi branch point;
        # compare on the circle.
        wrapped = normalize_angle(1001 * math.pi)
        assert abs(abs(wrapped) - math.pi) < 1e-9
        assert normalize_angle(1e6) == pytest.approx(
            math.remainder(1e6, 2 * math.pi), abs=1e-9
        )

    def test_result_always_in_range(self):
        for k in range(-20, 21):
            for frac in (0.0, 0.3, 0.5, 0.99):
                wrapped = normalize_angle((k + frac) * math.pi)
                assert -math.pi - 1e-12 < wrapped <= math.pi + 1e-12

"""Unit tests for the service's scheduling and warm-cache layers.

The queue is plain synchronous state driven here with a fake clock, so
rate limiting, strict priority, pause/drain, and depth bounds are all
deterministic; the memory cache tests cover write-through, promotion,
LRU eviction, and the layer-qualified event stream.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import CompileCache, MemoryCache, NullCache, open_cache
from repro.service import (
    JobQueue,
    QueueClosed,
    QueueFull,
    TenantClass,
    TokenBucket,
    load_tenants,
)
from repro.service.jobs import Job


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_job(job_id: str, tenant: str = "default") -> Job:
    return Job(id=job_id, kind="compile", tenant=tenant, params={})


class TestTokenBucket:
    def test_unlimited_rate_never_waits(self):
        bucket = TokenBucket(0.0, burst=1, clock=FakeClock())
        for _ in range(100):
            assert bucket.wait_time() == 0.0
            bucket.take()

    def test_burst_then_sustained_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, burst=3, clock=clock)
        for _ in range(3):
            assert bucket.wait_time() == 0.0
            bucket.take()
        assert bucket.wait_time() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.wait_time() == 0.0
        bucket.take()
        assert bucket.wait_time() > 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=2, clock=clock)
        clock.advance(100.0)
        bucket.take()
        bucket.take()
        assert bucket.wait_time() == pytest.approx(0.1)


class TestJobQueue:
    def test_fifo_within_one_tenant(self):
        queue = JobQueue()
        for i in range(3):
            queue.submit(make_job(f"j{i}"))
        order = [queue.pop_ready()[0].id for _ in range(3)]
        assert order == ["j0", "j1", "j2"]
        assert queue.pop_ready() == (None, None)

    def test_strict_priority_across_tenants(self):
        tenants = {
            "interactive": TenantClass("interactive", priority=0),
            "batch": TenantClass("batch", priority=20),
        }
        queue = JobQueue(tenants)
        queue.submit(make_job("b1", "batch"))
        queue.submit(make_job("i1", "interactive"))
        queue.submit(make_job("b2", "batch"))
        queue.submit(make_job("i2", "interactive"))
        order = [queue.pop_ready()[0].id for _ in range(4)]
        assert order == ["i1", "i2", "b1", "b2"]

    def test_rate_limited_tenant_is_skipped_not_blocking(self):
        clock = FakeClock()
        tenants = {
            "hot": TenantClass("hot", priority=0, rate_per_s=1.0, burst=1),
            "cold": TenantClass("cold", priority=50),
        }
        queue = JobQueue(tenants, clock=clock)
        queue.submit(make_job("h1", "hot"))
        queue.submit(make_job("h2", "hot"))
        queue.submit(make_job("c1", "cold"))
        assert queue.pop_ready()[0].id == "h1"
        # hot is out of tokens: the lower-priority tenant runs instead.
        assert queue.pop_ready()[0].id == "c1"
        job, delay = queue.pop_ready()
        assert job is None and delay == pytest.approx(1.0)
        clock.advance(1.0)
        assert queue.pop_ready()[0].id == "h2"

    def test_max_queued_raises_queue_full(self):
        tenants = {"tiny": TenantClass("tiny", max_queued=1)}
        queue = JobQueue(tenants)
        queue.submit(make_job("a", "tiny"))
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(make_job("b", "tiny"))
        assert excinfo.value.tenant == "tiny"

    def test_unknown_tenant_inherits_default_class(self):
        queue = JobQueue({"default": TenantClass("default", priority=7)})
        spec = queue.tenant_class("newcomer")
        assert spec.name == "newcomer" and spec.priority == 7
        open_spec = JobQueue().tenant_class("anyone")
        assert open_spec.rate_per_s == 0.0

    def test_pause_resume(self):
        queue = JobQueue()
        queue.submit(make_job("a"))
        queue.pause()
        assert queue.pop_ready() == (None, None)
        queue.resume()
        assert queue.pop_ready()[0].id == "a"

    def test_close_drains_then_rejects(self):
        queue = JobQueue()
        queue.submit(make_job("a"))
        queue.close()
        with pytest.raises(QueueClosed):
            queue.submit(make_job("b"))
        assert not queue.drained
        assert queue.pop_ready()[0].id == "a"
        assert queue.drained

    def test_depth_counts_every_tenant(self):
        queue = JobQueue()
        queue.submit(make_job("a", "x"))
        queue.submit(make_job("b", "y"))
        assert queue.depth() == 2


class TestMemoryCache:
    def test_write_through_to_backing(self, tmp_path):
        backing = open_cache(tmp_path / "cache")
        front = MemoryCache(backing)
        front.put("k1", {"v": 1})
        assert backing.get("k1") == {"v": 1}
        assert front.get("k1") == {"v": 1}

    def test_memory_hit_beats_disk(self, tmp_path):
        backing = open_cache(tmp_path / "cache")
        front = MemoryCache(backing)
        events = []
        front.observer = events.append
        front.put("k1", {"v": 1})
        front.get("k1")
        assert events == ["store", "memory_hit"]
        # The backing store was not consulted for the hit.
        assert backing.stats.hits == 0

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        backing = open_cache(tmp_path / "cache")
        backing.put("k1", {"v": 1})
        front = MemoryCache(backing)
        events = []
        front.observer = events.append
        assert front.get("k1") == {"v": 1}
        assert front.get("k1") == {"v": 1}
        assert events == ["disk_hit", "memory_hit"]

    def test_miss_everywhere(self, tmp_path):
        front = MemoryCache(open_cache(tmp_path / "cache"))
        events = []
        front.observer = events.append
        assert front.get("nope") is None
        assert events == ["miss"]
        assert front.stats.misses == 1

    def test_lru_eviction_is_bounded(self):
        front = MemoryCache(NullCache(), max_entries=2)
        front.put("a", 1)
        front.put("b", 2)
        front.get("a")  # refresh a; b is now the eviction candidate
        front.put("c", 3)
        assert len(front) == 2
        assert front.get("b") is None  # NullCache backing: gone for good
        assert front.get("a") == 1 and front.get("c") == 3

    def test_evicted_entry_recovers_from_disk(self, tmp_path):
        backing = open_cache(tmp_path / "cache")
        front = MemoryCache(backing, max_entries=1)
        front.put("a", {"v": 1})
        front.put("b", {"v": 2})  # evicts a from memory, not from disk
        assert front.get("a") == {"v": 1}

    def test_root_delegates_to_backing(self, tmp_path):
        backing = open_cache(tmp_path / "cache")
        assert MemoryCache(backing).root == backing.root
        assert MemoryCache(NullCache()).root is None
        assert MemoryCache(None).root is None

    def test_clear_only_drops_memory(self, tmp_path):
        backing = open_cache(tmp_path / "cache")
        front = MemoryCache(backing)
        front.put("a", 1)
        front.clear()
        assert len(front) == 0
        assert front.get("a") == 1  # served from disk again

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryCache(NullCache(), max_entries=0)

    def test_duck_types_as_cache(self, tmp_path):
        """compile_with_cache accepts the front wherever a cache goes."""
        from repro.compiler import OptimizationLevel
        from repro.devices import device_by_name
        from repro.experiments.runner import compile_with_cache
        from repro.programs import benchmark_by_name

        front = MemoryCache(open_cache(tmp_path / "cache"))
        circuit, _ = benchmark_by_name("HS2").build()
        device = device_by_name("tenerife", day=0)
        cold, hit_cold = compile_with_cache(
            circuit, device, OptimizationLevel.OPT_1QCN, cache=front
        )
        warm, hit_warm = compile_with_cache(
            circuit, device, OptimizationLevel.OPT_1QCN, cache=front
        )
        assert (hit_cold, hit_warm) == (False, True)
        assert warm.executable() == cold.executable()
        assert isinstance(front.backing, CompileCache)


class TestTenantConfig:
    def test_load_tenants_roundtrip(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "interactive": {"priority": 0},
                    "batch": {"priority": 20, "rate_per_s": 2, "burst": 4},
                }
            )
        )
        tenants = load_tenants(path)
        assert tenants["interactive"].priority == 0
        assert tenants["batch"].rate_per_s == 2
        assert tenants["batch"].max_queued == 1024

    def test_load_tenants_rejects_non_object(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_tenants(path)

    def test_load_tenants_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"x": {"prio": 1}}))
        with pytest.raises(ValueError, match="unknown fields"):
            load_tenants(path)

"""Tests for Scaffold lowering: unrolling, inlining, semantics."""

import math

import pytest

from repro.programs import bernstein_vazirani
from repro.scaffold import compile_scaffold
from repro.scaffold.errors import (
    ScaffoldError,
    ScaffoldNameError,
    ScaffoldTypeError,
)
from repro.sim import ideal_distribution

BV_SOURCE = """
const int N = 4;
module main(qbit q[N]) {
    for (int i = 0; i < N - 1; i++) { H(q[i]); }
    X(q[N-1]); H(q[N-1]);
    for (int i = 0; i < N - 1; i++) { CNOT(q[i], q[N-1]); }
    for (int i = 0; i < N; i++) { H(q[i]); MeasZ(q[i]); }
}
"""


class TestBasics:
    def test_gate_emission(self):
        circuit = compile_scaffold("module main(qbit q[2]) { H(q[0]); CNOT(q[0], q[1]); }")
        assert [i.name for i in circuit] == ["h", "cx"]

    def test_scalar_qbit(self):
        circuit = compile_scaffold("module main(qbit a, qbit b) { CNOT(a, b); }")
        assert circuit.num_qubits == 2
        assert circuit[0].qubits == (0, 1)

    def test_rotation_with_pi(self):
        circuit = compile_scaffold("module main(qbit q) { Rz(q, pi / 2); }")
        assert circuit[0].params[0] == pytest.approx(math.pi / 2)

    def test_measz_records_cbit(self):
        circuit = compile_scaffold("module main(qbit q[2]) { MeasZ(q[1]); }")
        assert circuit[0].cbits == (1,)

    def test_measx_adds_hadamard(self):
        circuit = compile_scaffold("module main(qbit q) { MeasX(q); }")
        assert [i.name for i in circuit] == ["h", "measure"]

    def test_prepz_one_flips(self):
        circuit = compile_scaffold("module main(qbit q) { PrepZ(q, 1); H(q); }")
        assert [i.name for i in circuit] == ["x", "h"]

    def test_prepz_zero_is_noop(self):
        circuit = compile_scaffold("module main(qbit q) { PrepZ(q, 0); H(q); }")
        assert [i.name for i in circuit] == ["h"]

    def test_whole_register_measure(self):
        circuit = compile_scaffold("module main(qbit q[3]) { MeasZ(q); }")
        assert circuit.count_ops()["measure"] == 3


class TestControlFlow:
    def test_loop_unrolling(self):
        circuit = compile_scaffold(
            "module main(qbit q[4]) { for (int i = 0; i < 4; i++) { H(q[i]); } }"
        )
        assert [i.qubits[0] for i in circuit] == [0, 1, 2, 3]

    def test_loop_with_stride(self):
        circuit = compile_scaffold(
            "module main(qbit q[6]) {"
            " for (int i = 0; i < 6; i = i + 2) { H(q[i]); } }"
        )
        assert [i.qubits[0] for i in circuit] == [0, 2, 4]

    def test_countdown_loop(self):
        circuit = compile_scaffold(
            "module main(qbit q[3]) {"
            " for (int i = 2; i >= 0; i--) { H(q[i]); } }"
        )
        assert [i.qubits[0] for i in circuit] == [2, 1, 0]

    def test_nested_loops(self):
        circuit = compile_scaffold(
            "module main(qbit q[2]) {"
            " for (int i = 0; i < 2; i++) {"
            "   for (int j = 0; j < 2; j++) { H(q[j]); } } }"
        )
        assert len(circuit) == 4

    def test_if_true_branch(self):
        circuit = compile_scaffold(
            "module main(qbit q) { if (2 > 1) { H(q); } else { X(q); } }"
        )
        assert circuit[0].name == "h"

    def test_if_false_branch(self):
        circuit = compile_scaffold(
            "module main(qbit q) { if (2 < 1) { H(q); } else { X(q); } }"
        )
        assert circuit[0].name == "x"

    def test_variable_assignment(self):
        circuit = compile_scaffold(
            "module main(qbit q[4]) { int k = 1; k = k + 2; H(q[k]); }"
        )
        assert circuit[0].qubits == (3,)

    def test_runaway_loop_guard(self):
        with pytest.raises(ScaffoldError, match="iterations"):
            compile_scaffold(
                "module main(qbit q) {"
                " for (int i = 0; i < 200000; i++) { H(q); } }"
            )


class TestModulesAndDefines:
    def test_module_inlining(self):
        circuit = compile_scaffold(
            "module bell(qbit a, qbit b) { H(a); CNOT(a, b); }\n"
            "module main(qbit q[4]) { bell(q[0], q[1]); bell(q[2], q[3]); }"
        )
        assert [i.name for i in circuit] == ["h", "cx", "h", "cx"]
        assert circuit[3].qubits == (2, 3)

    def test_register_passed_whole(self):
        circuit = compile_scaffold(
            "module ghz(qbit r[3]) { H(r[0]); CNOT(r[0], r[1]); CNOT(r[1], r[2]); }\n"
            "module main(qbit q[3]) { ghz(q); }"
        )
        assert len(circuit) == 3

    def test_defines_override_consts(self):
        source = (
            "const int N = 2;\n"
            "module main(qbit q[N]) {"
            " for (int i = 0; i < N; i++) { H(q[i]); } }"
        )
        assert compile_scaffold(source).num_qubits == 2
        assert compile_scaffold(source, defines={"N": 5}).num_qubits == 5

    def test_recursion_guard(self):
        with pytest.raises(ScaffoldError, match="depth"):
            compile_scaffold(
                "module loop(qbit a) { loop(a); }\n"
                "module main(qbit q) { loop(q); }"
            )

    def test_unknown_gate(self):
        with pytest.raises(ScaffoldNameError, match="unknown gate"):
            compile_scaffold("module main(qbit q) { Hadamard(q); }")

    def test_wrong_module_arity(self):
        with pytest.raises(ScaffoldTypeError, match="argument"):
            compile_scaffold(
                "module bell(qbit a, qbit b) { CNOT(a, b); }\n"
                "module main(qbit q[2]) { bell(q[0]); }"
            )

    def test_register_size_mismatch(self):
        with pytest.raises(ScaffoldTypeError, match="expects"):
            compile_scaffold(
                "module ghz(qbit r[3]) { H(r[0]); }\n"
                "module main(qbit q[2]) { ghz(q); }"
            )

    def test_missing_entry_module(self):
        with pytest.raises(ScaffoldNameError, match="no module named"):
            compile_scaffold("module helper(qbit q) { H(q); }")


class TestErrors:
    def test_index_out_of_range(self):
        with pytest.raises(ScaffoldError, match="out of range"):
            compile_scaffold("module main(qbit q[2]) { H(q[2]); }")

    def test_undefined_register(self):
        with pytest.raises(ScaffoldNameError, match="undefined qubit"):
            compile_scaffold("module main(qbit q) { H(r); }")

    def test_undefined_variable(self):
        with pytest.raises(ScaffoldNameError, match="undefined variable"):
            compile_scaffold("module main(qbit q[4]) { H(q[k]); }")

    def test_non_integer_index(self):
        with pytest.raises(ScaffoldTypeError, match="integer"):
            compile_scaffold("module main(qbit q[4]) { H(q[1.5]); }")


class TestSemantics:
    def test_bv4_matches_builtin(self):
        circuit = compile_scaffold(BV_SOURCE)
        reference, correct = bernstein_vazirani(4)
        assert ideal_distribution(circuit) == pytest.approx(
            ideal_distribution(reference)
        )
        assert ideal_distribution(circuit)[correct] == pytest.approx(1.0)

    def test_parameterized_bv(self):
        circuit = compile_scaffold(BV_SOURCE, defines={"N": 6})
        reference, _ = bernstein_vazirani(6)
        assert ideal_distribution(circuit) == pytest.approx(
            ideal_distribution(reference)
        )

    def test_loop_body_scoping(self):
        # The loop variable must not leak out of the loop.
        with pytest.raises(ScaffoldNameError):
            compile_scaffold(
                "module main(qbit q[4]) {"
                " for (int i = 0; i < 2; i++) { H(q[i]); }"
                " H(q[i]); }"
            )


class TestIntModuleParams:
    def test_int_param_bound_from_literal(self):
        circuit = compile_scaffold(
            "module rot(qbit q, int d) { Rz(q, pi / d); }\n"
            "module main(qbit q) { rot(q, 4); }"
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 4)

    def test_int_param_bound_from_expression(self):
        circuit = compile_scaffold(
            "module rot(qbit q, int d) { Rz(q, pi / d); }\n"
            "module main(qbit q) { int k = 3; rot(q, k + 1); }"
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 4)

    def test_int_param_bound_from_bare_variable(self):
        # A bare name parses as a qubit ref; the int parameter rebinds
        # it as a variable reference.
        circuit = compile_scaffold(
            "module rot(qbit q, int d) { Rz(q, pi / d); }\n"
            "module main(qbit q) { int k = 8; rot(q, k); }"
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 8)

    def test_qubit_passed_to_int_param_rejected(self):
        with pytest.raises(ScaffoldTypeError, match="is an int"):
            compile_scaffold(
                "module rot(qbit q, int d) { Rz(q, pi / d); }\n"
                "module main(qbit q, qbit r) { rot(q, r[0]); }"
            )

    def test_entry_module_int_param_rejected(self):
        with pytest.raises(ScaffoldTypeError, match="cannot take int"):
            compile_scaffold("module main(qbit q, int n) { H(q); }")

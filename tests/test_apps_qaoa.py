"""Tests for the QAOA MaxCut application."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.qaoa import (
    expected_cut,
    max_cut_value,
    noisy_expected_cut,
    optimize_qaoa,
    qaoa_circuit,
    ring_graph,
)
from repro.compiler import OptimizationLevel
from repro.devices import ibmq16_rueschlikon, umd_trapped_ion


class TestGraphUtilities:
    def test_ring_max_cut(self):
        assert max_cut_value(ring_graph(4)) == 4
        assert max_cut_value(ring_graph(5)) == 4

    def test_complete_graph_max_cut(self):
        # K4: best cut splits 2/2 -> 4 edges cut.
        assert max_cut_value(nx.complete_graph(4)) == 4


class TestCircuit:
    def test_structure(self):
        circuit = qaoa_circuit(ring_graph(3), [0.4], [0.3])
        counts = circuit.count_ops()
        assert counts["h"] == 3
        assert counts["cx"] == 6  # 2 per edge
        assert counts["rz"] == 3
        assert counts["rx"] == 3

    def test_depth_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one beta per gamma"):
            qaoa_circuit(ring_graph(3), [0.4], [0.3, 0.2])

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            qaoa_circuit(ring_graph(3), [], [])

    def test_zero_angles_give_uniform_cut(self):
        # gamma = beta = 0: the uniform superposition; expected cut =
        # |E| / 2.
        graph = ring_graph(4)
        circuit = qaoa_circuit(graph, [0.0], [0.0])
        assert expected_cut(circuit, graph) == pytest.approx(2.0)


class TestOptimization:
    def test_p1_ring4_hits_three_quarters(self):
        # The known p=1 result for the 4-cycle: ratio 3/4.
        result = optimize_qaoa(ring_graph(4), depth=1)
        assert result.approximation_ratio == pytest.approx(0.75, abs=0.01)

    def test_p2_ring4_is_exact(self):
        result = optimize_qaoa(ring_graph(4), depth=2)
        assert result.approximation_ratio == pytest.approx(1.0, abs=0.01)

    def test_expected_cut_bounded_by_optimum(self):
        graph = ring_graph(5)
        rng = np.random.default_rng(0)
        optimum = max_cut_value(graph)
        for _ in range(5):
            circuit = qaoa_circuit(
                graph, [rng.uniform(0, np.pi)], [rng.uniform(0, np.pi)]
            )
            assert expected_cut(circuit, graph) <= optimum + 1e-9


class TestNoisyEvaluation:
    def test_noise_reduces_expected_cut(self):
        graph = ring_graph(4)
        result = optimize_qaoa(graph, depth=1)
        noisy = noisy_expected_cut(graph, result, ibmq16_rueschlikon())
        assert noisy < result.expected_cut

    def test_ion_trap_beats_superconducting(self):
        graph = ring_graph(4)
        result = optimize_qaoa(graph, depth=1)
        umd = noisy_expected_cut(graph, result, umd_trapped_ion())
        ibm = noisy_expected_cut(graph, result, ibmq16_rueschlikon())
        assert umd > ibm

    def test_noise_aware_at_least_as_good(self):
        graph = ring_graph(4)
        result = optimize_qaoa(graph, depth=1)
        device = ibmq16_rueschlikon()
        aware = noisy_expected_cut(
            graph, result, device, level=OptimizationLevel.OPT_1QCN
        )
        unaware = noisy_expected_cut(
            graph, result, device, level=OptimizationLevel.OPT_1QC
        )
        assert aware >= unaware - 0.05

"""CI smoke for the ``repro serve`` daemon (the service-smoke job).

Boots the daemon as a real subprocess on an ephemeral port, then
asserts the service contract end to end:

* compile and run jobs complete over HTTP with the expected payloads;
* N identical concurrent submissions are folded onto ONE underlying
  compile by the in-flight coalescer — proven by the cache-event
  counters (``coalesced == N-1``) and the executed-job counter
  (``jobs_completed{kind="compile"} == expected``), not by timing;
* ``/metrics`` round-trips through the strict Prometheus parser
  (:func:`repro.obs.parse_prometheus` raises on any malformed line);
* SIGTERM drains gracefully: exit code 0 and the drained banner.

Run locally with ``python .github/scripts/service_smoke.py`` (needs the
package importable, e.g. ``pip install -e .`` or ``PYTHONPATH=src``).
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.obs import parse_prometheus


def request(port, method, path, body=None, timeout=170):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = json.dumps(body) if body is not None else None
        conn.request(method, path, body=data)
        response = conn.getresponse()
        text = response.read().decode("utf-8")
    finally:
        conn.close()
    return response.status, text


def metric(port, name, **labels):
    status, text = request(port, "GET", "/metrics")
    assert status == 200, f"/metrics -> {status}"
    series = parse_prometheus(text)  # strict: raises on malformed lines
    wanted = json.dumps({k: str(v) for k, v in labels.items()}, sort_keys=True)
    return series.get(name, {}).get(wanted, 0.0)


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-service-smoke-")
    port_file = os.path.join(tmp, "port")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", port_file,
            "--cache-dir", os.path.join(tmp, "cache"),
            "--admin",
            "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 120
        while not os.path.exists(port_file):
            assert proc.poll() is None, proc.stderr.read().decode()
            assert time.monotonic() < deadline, "daemon never wrote the port"
            time.sleep(0.1)
        port = int(open(port_file).read().strip())
        print(f"daemon up on port {port}")

        status, _ = request(port, "GET", "/healthz")
        assert status == 200, f"healthz -> {status}"

        # --- compile + run jobs over HTTP ---------------------------------
        status, text = request(
            port, "POST", "/v1/compile",
            {"benchmark": "HS2", "device": "tenerife"},
        )
        payload = json.loads(text)
        assert status == 200 and payload["job"]["status"] == "done", text[:300]
        assert payload["result"]["executable"].startswith("OPENQASM"), (
            "unexpected executable"
        )
        print("compile ok:", payload["result"]["cache_key"][:16])

        status, text = request(
            port, "POST", "/v1/run",
            {"benchmark": "HS2", "device": "tenerife", "fault_samples": 20},
        )
        payload = json.loads(text)
        assert status == 200, text[:300]
        assert 0.0 <= payload["result"]["success_rate"] <= 1.0
        print("run ok:", payload["result"]["success_rate"])

        # --- coalescing: N identical in-flight submissions, one compile ---
        executed_before = metric(
            port, "repro_service_jobs_completed_total",
            kind="compile", tenant="default", status="done",
        )
        coalesced_before = metric(
            port, "repro_service_cache_events_total", event="coalesced",
        )
        status, _ = request(port, "POST", "/admin/pause")
        assert status == 200
        body = {"benchmark": "BV6", "device": "melbourne"}
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    request(port, "POST", "/v1/compile", body)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(2.0)  # let all four submissions land behind the pause
        status, _ = request(port, "POST", "/admin/resume")
        assert status == 200
        for thread in threads:
            thread.join(timeout=170)
        assert len(results) == 4
        payloads = [json.loads(text) for status, text in results]
        for status, _ in results:
            assert status == 200
        primaries = [
            p for p in payloads if p["job"]["coalesced_with"] is None
        ]
        assert len(primaries) == 1, "expected exactly one primary job"
        assert len({p["result"]["executable"] for p in payloads}) == 1
        coalesced = metric(
            port, "repro_service_cache_events_total", event="coalesced",
        )
        executed = metric(
            port, "repro_service_jobs_completed_total",
            kind="compile", tenant="default", status="done",
        )
        assert coalesced - coalesced_before == 3.0, (
            f"coalesced counter moved by {coalesced - coalesced_before}, "
            "expected 3"
        )
        assert executed - executed_before == 1.0, (
            f"executed-compile counter moved by {executed - executed_before},"
            " expected 1 (duplicates must be served from the coalescer)"
        )
        print("coalescing ok: 4 submissions, 1 compile, 3 folds")

        # --- strict /metrics validation -----------------------------------
        _, text = request(port, "GET", "/metrics")
        series = parse_prometheus(text)
        for required in (
            "repro_service_requests_total",
            "repro_service_jobs_submitted_total",
            "repro_service_cache_events_total",
            # Histogram samples expose as _bucket/_sum/_count series.
            "repro_service_job_latency_seconds_count",
        ):
            assert required in series, f"missing metric {required}"
        print(f"metrics ok: {len(series)} series parsed strictly")

        # --- graceful drain -----------------------------------------------
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        stderr = proc.stderr.read().decode()
        assert code == 0, f"exit code {code}\n{stderr}"
        assert "drained cleanly" in stderr, stderr
        print("drain ok: SIGTERM -> exit 0")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
            print("daemon stderr:", proc.stderr.read().decode(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke for service durability (the durability-smoke job).

Three lives of one ``repro serve`` daemon over one WAL + cache:

* **Life 1** runs with ``REPRO_FAULT_INJECT=serve-kill:5``: job A
  completes, job B is acknowledged (202) and then the daemon dies —
  ``os._exit`` right after the WAL fsync that marks B running, i.e.
  uncatchably, mid-execution.
* **Life 2** replays the WAL: A must be visible as terminal without
  re-executing, B must re-execute exactly once (proven by the
  ``jobs_completed`` counter, not timing) with ``interrupted: true``.
  Then a third job C is acknowledged and the daemon is killed with a
  real ``SIGKILL`` at an arbitrary moment.
* **Life 3** recovers C to a terminal state exactly once, then drains
  cleanly on SIGTERM with exit 0.

The contract under proof: every acknowledged job is completed exactly
once or reported interrupted — never lost, never double-executed.

Run locally with ``python .github/scripts/durability_smoke.py`` (needs
the package importable, e.g. ``pip install -e .`` or ``PYTHONPATH=src``).
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.experiments.faults import INJECTED_CRASH_EXIT_CODE
from repro.obs import parse_prometheus

BODY_A = {"benchmark": "HS2", "device": "tenerife"}
BODY_B = {"benchmark": "BV6", "device": "melbourne", "wait": False}
BODY_C = {"benchmark": "BV4", "device": "tenerife", "wait": False}


def boot(tmp, lifetag, fault_inject=None):
    port_file = os.path.join(tmp, f"port-{lifetag}")
    env = dict(os.environ)
    env.pop("REPRO_FAULT_INJECT", None)
    if fault_inject:
        env["REPRO_FAULT_INJECT"] = fault_inject
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", port_file,
            "--cache-dir", os.path.join(tmp, "cache"),
            "--wal-path", os.path.join(tmp, "wal.jsonl"),
            "--workers", "2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 120
    while not os.path.exists(port_file):
        assert proc.poll() is None, proc.stderr.read().decode()
        assert time.monotonic() < deadline, "daemon never listened"
        time.sleep(0.05)
    with open(port_file) as handle:
        port = int(handle.read().strip())
    return proc, port


def request(port, method, path, body=None, timeout=170):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = json.dumps(body) if body is not None else None
        conn.request(method, path, body=data)
        response = conn.getresponse()
        text = response.read().decode("utf-8")
    finally:
        conn.close()
    return response.status, (json.loads(text) if text else {})


def metric(port, name, **labels):
    status, _ = request(port, "GET", "/healthz")
    assert status == 200
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        text = conn.getresponse().read().decode("utf-8")
    finally:
        conn.close()
    series = parse_prometheus(text)  # strict: raises on malformed lines
    wanted = json.dumps({k: str(v) for k, v in labels.items()}, sort_keys=True)
    return series.get(name, {}).get(wanted, 0.0)


def wait_job(port, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while True:
        status, payload = request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, f"{job_id} was LOST across the restart"
        if payload["job"]["status"] in ("done", "failed"):
            return payload
        assert time.monotonic() < deadline, f"{job_id} never settled"
        time.sleep(0.05)


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-durability-smoke-")

    # Life 1: die uncatchably on the WAL fsync that marks B running.
    proc, port = boot(tmp, "1", fault_inject="serve-kill:5")
    try:
        status, payload = request(port, "POST", "/v1/compile", BODY_A)
        assert status == 200 and payload["job"]["status"] == "done", payload
        job_a = payload["job"]["id"]
        try:
            status, payload = request(port, "POST", "/v1/compile", BODY_B)
            assert status == 202, payload  # acknowledged -> must survive
            job_b = payload["job"]["id"]
        except (ConnectionError, http.client.HTTPException, OSError):
            # The dispatcher's "running" fsync (the kill point) can fire
            # before the buffered 202 flushes.  The submit record is
            # durable either way; life 2's job table names the id.
            job_b = None
        code = proc.wait(timeout=120)
        assert code == INJECTED_CRASH_EXIT_CODE, f"life 1 exit {code}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    print(
        f"life 1: {job_a} done, {job_b or 'job B (ack raced the kill)'} "
        f"killed mid-execution (exit {code})"
    )

    # Life 2: replay. A stays terminal, B re-executes exactly once.
    proc, port = boot(tmp, "2")
    try:
        if job_b is None:
            _, listing = request(port, "GET", "/v1/jobs")
            (job_b,) = [
                j["id"] for j in listing["jobs"] if j["id"] != job_a
            ]
        status, payload = request(port, "GET", f"/v1/jobs/{job_a}")
        assert status == 200, f"{job_a} was LOST across the restart"
        assert payload["job"]["status"] == "done", payload
        assert payload["job"]["recovered"] is True, payload
        payload = wait_job(port, job_b)
        assert payload["job"]["status"] == "done", payload
        assert payload["job"]["interrupted"] is True, payload
        assert payload["result"]["benchmark"] == "BV6", payload
        completed = metric(
            port, "repro_service_jobs_completed_total",
            kind="compile", tenant="default", status="done",
        )
        assert completed == 1.0, (
            f"exactly-once violated: life 2 executed {completed} jobs, "
            "expected 1 (B only — A must not re-run)"
        )
        reexecuted = metric(
            port, "repro_service_recovered_jobs_total",
            disposition="reexecuted",
        )
        assert reexecuted == 1.0, f"reexecuted={reexecuted}"
        print(f"life 2: {job_a} kept terminal, {job_b} re-executed once")

        # Now the nondeterministic killer: ack C, then kill -9.
        status, payload = request(port, "POST", "/v1/compile", BODY_C)
        assert status == 202, payload
        job_c = payload["job"]["id"]
        proc.kill()  # SIGKILL, wherever C happens to be right now
        assert proc.wait(timeout=120) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    print(f"life 2: {job_c} acknowledged, daemon SIGKILLed")

    # Life 3: C settles terminal exactly once; clean drain.
    proc, port = boot(tmp, "3")
    try:
        payload = wait_job(port, job_c)
        assert payload["job"]["status"] in ("done", "failed"), payload
        completed = metric(
            port, "repro_service_jobs_completed_total",
            kind="compile", tenant="default", status="done",
        )
        assert completed <= 1.0, (
            f"exactly-once violated: life 3 executed {completed} jobs "
            "for one acknowledged submission"
        )
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
        assert code == 0, f"life 3 drain exit {code}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    print(f"life 3: {job_c} settled exactly once, drained cleanly")
    print("durability smoke OK: nothing lost, nothing double-executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI chaos smoke for distributed sweeps (the chaos-smoke job).

The whole point of the distributed layer is that process death is
boring, so this script makes processes die and asserts nothing was
lost and nothing was double-counted:

1. **Baseline**: a clean single-machine sweep (``--workers 1``) of the
   grid, recording its journal digests and measurements.
2. **Chaos run**: the same grid through ``--workers-from local:2``
   with ``REPRO_FAULT_INJECT=crash:BV4:1`` killing one worker process
   mid-task (the driver respawns it, the lease expires and requeues).
   The driver process — coordinator included — is then SIGKILLed as
   soon as the journal holds two fsynced records.  If the sweep drains
   before the kill lands, that race is tolerated: the run simply
   completed, and resume becomes a no-op replay.
3. **Resume**: the same command again, no faults, ``--resume``.  Must
   exit 0 and stay distributed (no silent fallback).
4. **Invariants**: the chaos journal's digest set equals the
   baseline's; every digest was journaled exactly once across both
   coordinator lifetimes (no cell executed-and-counted twice); each
   cell's measurement matches the baseline byte for byte, modulo cache
   provenance (``cache_hit``) and wall-clock (``compile_time_s``).

Run locally with ``python .github/scripts/chaos_smoke.py`` (needs the
package importable, e.g. ``pip install -e .`` or ``PYTHONPATH=src``).
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCHMARKS = "BV4,Toffoli,Fredkin,HS2"
LEVELS = "1QOptCN"
FAULT_SAMPLES = "100"
#: Measurement fields that legitimately differ between executions.
VOLATILE = {"compile_time_s", "cache_hit"}
#: Journal records to wait for before killing the coordinator.
KILL_AFTER_RECORDS = 2


def sweep_command(cache_dir, run_id, extra):
    return [
        sys.executable, "-m", "repro", "sweep",
        "-d", "tenerife", "-l", LEVELS, "-b", BENCHMARKS,
        "--fault-samples", FAULT_SAMPLES,
        "--cache-dir", str(cache_dir),
        "--run-id", run_id,
    ] + extra


def journal_records(path):
    """Parsed records in append order (torn tails skipped, like resume)."""
    records = []
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return records
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8", errors="replace"))
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("v") == 1:
            records.append(record)
    return records


def stable_measurement(record):
    return {
        key: value
        for key, value in record["measurement"].items()
        if key not in VOLATILE
    }


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-smoke-"))
    env = dict(os.environ)
    env.pop("REPRO_FAULT_INJECT", None)

    # ------------------------------------------------------------------
    # 1. Clean single-machine baseline.
    print("== baseline: clean single-machine sweep", flush=True)
    subprocess.run(
        sweep_command(tmp / "cache-a", "baseline", ["--workers", "1"]),
        env=env, check=True, timeout=600,
    )
    baseline = {
        record["task"]: record
        for record in journal_records(
            tmp / "cache-a" / "journals" / "baseline.jsonl"
        )
    }
    assert baseline, "baseline journal is empty"
    print(f"baseline: {len(baseline)} cells journaled", flush=True)

    # ------------------------------------------------------------------
    # 2. Distributed run with a crashing worker; SIGKILL the
    #    coordinator once two completions are on disk.
    print("== chaos: distributed sweep, worker crash + coordinator kill",
          flush=True)
    chaos_env = dict(env, REPRO_FAULT_INJECT="crash:BV4:1")
    chaos_journal = tmp / "cache-b" / "journals" / "chaos.jsonl"
    proc = subprocess.Popen(
        sweep_command(
            tmp / "cache-b", "chaos",
            ["--workers-from", "local:2", "--lease-ttl", "2"],
        ),
        env=chaos_env,
    )
    killed = False
    deadline = time.monotonic() + 600
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break  # drained before the kill landed: tolerated race
        if len(journal_records(chaos_journal)) >= KILL_AFTER_RECORDS:
            proc.kill()
            proc.wait(timeout=60)
            killed = True
            break
        time.sleep(0.05)
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=60)
        raise AssertionError("chaos sweep neither progressed nor exited")
    mid_kill = journal_records(chaos_journal)
    print(
        f"chaos: coordinator {'SIGKILLed' if killed else 'finished first'} "
        f"with {len(mid_kill)} records journaled",
        flush=True,
    )

    # ------------------------------------------------------------------
    # 3. Resume the same run id with a fresh coordinator, no faults.
    print("== resume: fresh coordinator, same run id", flush=True)
    resume = subprocess.run(
        sweep_command(
            tmp / "cache-b", "chaos",
            [
                "--workers-from", "local:2", "--lease-ttl", "2",
                "--resume", "chaos",
            ],
        ),
        env=env, capture_output=True, text=True, timeout=600,
    )
    sys.stdout.write(resume.stdout)
    sys.stderr.write(resume.stderr)
    assert resume.returncode == 0, f"resume exited {resume.returncode}"
    assert "distributed" in resume.stderr, "resume fell back silently"

    # ------------------------------------------------------------------
    # 4. The invariants.
    records = journal_records(chaos_journal)
    digests = [record["task"] for record in records]
    assert sorted(set(digests)) == sorted(baseline), (
        "chaos digests differ from baseline"
    )
    assert len(digests) == len(set(digests)), (
        "a cell was journaled twice across coordinator lifetimes"
    )
    for digest, record in ((d, r) for d, r in zip(digests, records)):
        expected = stable_measurement(baseline[digest])
        actual = stable_measurement(record)
        assert actual == expected, (
            f"measurement mismatch for {digest[:12]}:\n"
            f"  baseline: {expected}\n  chaos:    {actual}"
        )
    print(
        f"OK: {len(digests)} cells, digests and measurements identical "
        f"to the single-machine baseline "
        f"(kill {'landed mid-sweep' if killed else 'lost the race'})",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
